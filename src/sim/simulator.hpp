// Trace-style network simulator: a client rides a rail line through the
// deployment while a pluggable mobility manager (legacy 4G/5G or REM) runs
// triggering, decision, and execution. The simulator owns the parts both
// designs share — radio dynamics, signaling transport with HARQ/ARQ
// attempts, radio-link-failure detection (N310/T310/N311 counters),
// handover execution with a T304-style failure timer, re-establishment —
// and classifies every failure into the Table 2 taxonomy. A seeded
// FaultInjector can distort any of those paths (sim/fault_injector.hpp).
#pragma once

#include "net/backhaul.hpp"
#include "phy/bler_model.hpp"
#include "sim/bs_capacity.hpp"
#include "sim/events.hpp"
#include "sim/fault_injector.hpp"
#include "sim/observer.hpp"
#include "sim/radio_env.hpp"

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace rem::sim {

/// What the manager sees about one candidate cell this tick.
struct Observation {
  std::size_t cell_idx = 0;
  mobility::CellId id;
  double rsrp_dbm = -160.0;   ///< instantaneous (fast-fading) RSRP
  double snr_db = -40.0;      ///< SNR of that RSRP (direct measurement)
  double dd_snr_db = -40.0;   ///< stable delay-Doppler SNR
  double bandwidth_hz = 20e6; ///< cell bandwidth (capacity-based policies)
  /// Age of the delay-Doppler estimate behind `dd_snr_db`. 0 while pilots
  /// are fresh; grows during a pilot outage, when `dd_snr_db` is the last
  /// good value plus corruption. Managers use it to detect staleness.
  double estimate_age_s = 0.0;
  bool pilot_faulted = false; ///< a pilot-outage fault is active this tick
  /// Last load advertisement heard from this cell over the backhaul
  /// (utilization in [0, 1]); -1 while unknown or older than
  /// SimConfig::load_ad_staleness_s. Managers may tie-break toward
  /// less-loaded candidates but must never widen the candidate set on it.
  double advertised_load = -1.0;
  /// This UE's per-target circuit breaker is open for the cell: recent
  /// consecutive preparation failures/busy-rejects, cool-down not yet
  /// elapsed. Managers must not select it as a handover target.
  bool breaker_open = false;
};

struct ServingState {
  std::size_t cell_idx = 0;
  mobility::CellId id;
  double rsrp_dbm = -160.0;
  double dd_snr_db = -40.0;
  double snr_db = -40.0;      ///< instantaneous link SNR (drives BLER)
  double bandwidth_hz = 20e6;
};

/// A manager's handover decision: measured/estimated feedback is ready
/// `feedback_delay_s` after the triggering tick. `fallback_idx` names the
/// second-best policy-consistent target (-1 = none): if the primary
/// target rejects admission or the backhaul partitions during
/// preparation, the simulator retries preparation toward the fallback
/// before declaring the attempt failed.
struct HandoverDecision {
  std::size_t target_idx = 0;
  double feedback_delay_s = 0.0;
  int fallback_idx = -1;
};

/// The pluggable mobility management design under test.
class MobilityManager {
 public:
  virtual ~MobilityManager() = default;
  virtual std::string name() const = 0;
  /// Waveform carrying this design's signaling (sets its loss behaviour).
  virtual phy::Waveform waveform() const = 0;
  /// Per-tick policy evaluation. Returns a decision at most once per
  /// handover attempt; the simulator handles delivery and execution.
  virtual std::optional<HandoverDecision> update(
      double t, const ServingState& serving,
      const std::vector<Observation>& neighbors) = 0;
  /// Cells the manager is currently able to measure/estimate (classifies
  /// "missed cell" failures). Indices into RadioEnv::cells().
  virtual std::set<std::size_t> visible_cells() const = 0;
  /// Serving cell changed (handover completed or re-established).
  virtual void on_serving_changed(double t, std::size_t new_idx) = 0;
  /// True while the manager has fallen back from its preferred input to a
  /// degraded one (e.g. REM bypassing stale cross-band estimates). The
  /// simulator samples this every tick to log degraded-mode enter/exit.
  virtual bool degraded_mode() const { return false; }
  /// True when the handover decision is computed on the client (REM's
  /// design): the decision then bypasses the serving BS's control-plane
  /// processing queue, so a BS overload cannot stall or shed it. Legacy
  /// network-side designs leave this false and pay BS capacity for every
  /// decision (the paper's degraded-mode asymmetry, made measurable).
  virtual bool client_driven() const { return false; }
};

/// Which driver executes a single-UE run(). Both drivers share the same
/// per-tick step functions, RNG draw order, and floating-point time
/// accumulation (the next step is scheduled at t + tick_s, exactly the
/// tick loop's `t += dt`), so their SimStats are bit-identical — the
/// golden corpus pins the tick loop and test_fleet pins the equivalence.
/// Multi-UE fleets (run_fleet) always run on the event queue.
enum class SimEngine {
  kTickLoop,    ///< the seed's for-loop driver (default)
  kEventQueue,  ///< sim::EventQueue-driven discrete-event dispatch
};

/// Multi-UE fleet knobs (Simulator::run_fleet). UE 0 always uses the
/// scenario's SimConfig::speed_kmh and starts at position 0 — and draws
/// nothing extra — so a fleet of one is bit-identical to a single-UE
/// run(). Every further UE forks its own RNG stream from the simulation
/// RNG (in UE-id order) and derives a mixed speed and start offset from
/// that stream's first draws.
/// One mobility class of a mixed-speed fleet population: `count` UEs
/// drawing their speed uniformly from [speed_lo_kmh, speed_hi_kmh].
/// Compiled scenarios (rem::scenario) map the paper's pedestrian /
/// vehicular / HST-350 populations onto these bands.
struct FleetSpeedClass {
  std::string name;        ///< label for diagnostics ("pedestrian", ...)
  int count = 0;           ///< UEs of this class (UE 0 fills the first slot)
  double speed_lo_kmh = 200.0;
  double speed_hi_kmh = 350.0;
};

struct FleetConfig {
  /// Speed range (km/h) for UE 1..N-1, drawn uniformly per UE. Ignored
  /// when `classes` is non-empty.
  double speed_min_kmh = 200.0;
  double speed_max_kmh = 350.0;
  /// Start-position spread (m): UE 1..N-1 begin uniformly in [0, spread).
  double start_spread_m = 2000.0;
  /// Mixed-speed population: when non-empty, the class counts must sum to
  /// SimConfig::fleet_size and UE k takes the class whose cumulative count
  /// covers k (classes fill in order). UE 0 still rides the scenario's
  /// exact speed_kmh without drawing — its slot belongs to the first
  /// class — and every other UE draws one uniform speed from its class
  /// band, so the per-UE draw count (and therefore the RNG contract of
  /// run_fleet) is identical to the single-band path. Empty (the default)
  /// preserves the [speed_min_kmh, speed_max_kmh] behaviour bit-for-bit.
  std::vector<FleetSpeedClass> classes;
};

enum class FailureCause {
  kFeedbackDelayLoss,  ///< feedback too slow or lost in delivery (§3.1)
  kMissedCell,         ///< viable cell invisible to the decision (§3.2)
  kHoCommandLoss,      ///< handover command lost in delivery (§3.3)
  kCoverageHole,       ///< nothing to hand over to
};

/// Table 2 row label. Throws std::invalid_argument on a value outside the
/// enum instead of returning a placeholder.
std::string failure_cause_name(FailureCause c);

struct SimConfig {
  double speed_kmh = 300.0;
  double duration_s = 2000.0;
  double tick_s = 0.010;
  /// Radio link failure detection, N310/T310/N311 style: `n310`
  /// consecutive ticks with serving SNR below `qout_snr_db` start T310;
  /// RLF is declared when T310 runs for `t310_s`, unless `n311`
  /// consecutive in-sync ticks (SNR >= qout + `qin_margin_db`) cancel it.
  /// Defaults reproduce the seed's single 0.5 s Qout timer at tick 10 ms.
  double qout_snr_db = -7.0;
  int n310 = 5;
  double t310_s = 0.45;
  int n311 = 3;
  double qin_margin_db = 1.0;
  /// Minimum mean RSRP for a cell to count as coverage.
  double min_coverage_rsrp_dbm = -120.0;
  /// Minimum SNR for a handover execution to succeed at the target.
  double min_connect_snr_db = -6.0;
  /// Re-establishment after RLF: search + connect time.
  double reestablish_s = 0.8;
  /// Handover-execution failure (T304 analogue): when the target cannot
  /// be connected at execution time, fall back to re-establishment on the
  /// prepared target, which is faster than a full RLF search because the
  /// target already holds the UE context.
  double t304_reestablish_s = 0.3;
  /// Signaling transport: attempts (HARQ/ARQ) and per-attempt spacing.
  int uplink_attempts = 2;
  int downlink_attempts = 1;  // commands are time-critical (no ARQ window)
  double retry_spacing_s = 0.008;
  /// Lost measurement reports are retransmitted with bounded exponential
  /// backoff (base delay doubles per retry) before counting as lost.
  int report_max_retries = 3;
  double report_retry_backoff_s = 0.04;
  /// Base-station processing between feedback arrival and HO command.
  double decision_proc_s = 0.050;
  /// Execution interruption (detach + random access on target).
  double ho_interruption_s = 0.050;
  /// Ping-pong window: A->B->A within this window counts as a loop.
  double loop_window_s = 15.0;
  /// After a completed handover, suppress new decisions briefly (standard
  /// post-handover measurement blanking).
  double post_ho_suppress_s = 0.3;
  /// Record a per-event signaling log (SimStats::events) — the simulated
  /// analogue of the paper's MobileInsight captures.
  bool record_events = false;
  /// Optional non-owning observation hook (sim/observer.hpp): receives the
  /// event stream, per-tick state snapshots, and the final stats. Used by
  /// rem::testkit::InvariantChecker; never changes simulation results.
  SimObserver* observer = nullptr;
  /// Fault schedule (empty = no faults, zero overhead on the hot path).
  FaultConfig faults;
  /// Inter-BS control-plane transport (rem::net). When enabled, handover
  /// preparation (HANDOVER REQUEST/ACK) and outage context fetch ride a
  /// lossy, delayed message network; when disabled, preparation is
  /// instantaneous and infallible (the pre-backhaul behaviour).
  net::BackhaulConfig backhaul;
  /// Preparation timer (T-prep analogue): if no ack/reject arrives within
  /// `prep_timeout_s` of the HANDOVER REQUEST, re-send with exponential
  /// backoff (timeout doubles per retry) up to `prep_max_retries` times,
  /// then try the decision's fallback target, then fail the attempt.
  double prep_timeout_s = 0.030;
  int prep_max_retries = 4;
  /// Context fetch during RLF re-establishment: the new cell asks the old
  /// serving cell for the UE context over the backhaul. Retries use the
  /// same exponential-backoff shape; exhaustion forces a context-less
  /// degraded re-establishment that costs `ctx_degraded_penalty_s` extra.
  double ctx_fetch_timeout_s = 0.040;
  int ctx_fetch_max_retries = 3;
  double ctx_degraded_penalty_s = 0.4;
  /// Per-BS control-plane capacity (sim/bs_capacity.hpp): processing
  /// slots + bounded FIFO signaling queue consumed by prep admission,
  /// context lookups, and network-side RRC decisions. Disabled restores
  /// the infinite-capacity, always-alive BS model.
  BsCapacityConfig bs_capacity;
  // --- Cascade resilience (all default-off: zero behavioural change and
  // --- zero extra RNG draws unless a scenario opts in) ---
  /// Staleness bound (s) for per-BS load advertisements piggybacked on
  /// backhaul control frames. > 0 enables the feature: every frame a BS
  /// sends carries its control-plane utilization, the UE keeps the latest
  /// per-cell value, and Observation::advertised_load exposes it while it
  /// is younger than this bound (stale values read as unknown). 0 (the
  /// default) disables advertisement entirely.
  double load_ad_staleness_s = 0.0;
  /// Per-target circuit breaker: trip after this many *consecutive*
  /// preparation failures/busy-rejects toward one target cell, then
  /// refuse it (Observation::breaker_open) until `breaker_cooldown_s`
  /// elapses, when one half-open probe preparation is allowed — success
  /// closes the breaker, failure re-trips it. 0 (the default) disables.
  int breaker_trip_k = 0;
  double breaker_cooldown_s = 2.0;
  /// Storm damping: scale every admission-backoff retry delay by a
  /// deterministic per-UE jitter in [1, 1 + storm_jitter_frac), drawn
  /// from the UE's own RNG stream, so a displaced fleet's retries
  /// desynchronize instead of hammering the next BS in lockstep. 0 (the
  /// default) draws nothing and keeps the legacy timing bit-for-bit.
  double storm_jitter_frac = 0.0;
  /// Which driver executes run(). kTickLoop is the seed's loop; the event
  /// queue is bit-identical for single-UE runs (test_fleet pins this).
  SimEngine engine = SimEngine::kTickLoop;
  /// Number of UEs a run_fleet() carries. run() ignores it; run_fleet()
  /// rejects values < 1. UEs genuinely share BsStation slots, RRC queues,
  /// and the backhaul's in-flight capacity.
  int fleet_size = 1;
  /// Per-UE speed/start derivation for run_fleet().
  FleetConfig fleet;
};

struct SimStats {
  double sim_time_s = 0.0;
  int handovers = 0;              ///< attempts (success + failure)
  int successful_handovers = 0;
  int failures = 0;               ///< network failures (RLF events)
  std::map<FailureCause, int> failures_by_cause;
  int loop_handovers = 0;         ///< handovers that are part of a loop
  int loop_episodes = 0;
  int intra_freq_loop_episodes = 0;
  /// Loop episodes whose cell pair has a *policy conflict* (per the exact
  /// analyzer) — the paper's "handovers in conflicts" metric. Requires a
  /// pair_conflicts predicate at run() time.
  int conflict_loop_episodes = 0;
  int conflict_loop_handovers = 0;
  int intra_freq_conflict_loops = 0;
  double avg_handover_interval_s = 0.0;
  std::vector<double> outage_durations_s;  ///< per RLF, until re-established
  std::vector<double> feedback_delays_s;
  // --- Recovery-path accounting (fault injection / hardened FSM) ---
  int report_retransmits = 0;     ///< lost reports re-sent with backoff
  int t304_expiries = 0;          ///< handover executions that failed
  int t304_fallback_success = 0;  ///< ...re-established on prepared target
  int duplicate_commands = 0;     ///< stale duplicate commands executed
  int degraded_enters = 0;        ///< manager degraded-mode transitions
  double degraded_time_s = 0.0;   ///< total time in degraded mode
  // --- Backhaul preparation / context fetch (rem::net transport) ---
  int prep_requests = 0;          ///< HANDOVER REQUESTs first-sent
  int prep_retries = 0;           ///< timed-out requests re-sent
  int prep_acks = 0;              ///< preparations admitted by the target
  int prep_rejects = 0;           ///< admission rejections received
  int prep_fallbacks = 0;         ///< switches to the fallback target
  int prep_failures = 0;          ///< attempts abandoned in preparation
  double prep_rtt_sum_s = 0.0;    ///< summed request->ack round trips
  int context_fetch_failures = 0; ///< outage context fetches exhausted
  // Transport-level counters mirrored from net::TransportStats.
  std::uint64_t backhaul_sent = 0;
  std::uint64_t backhaul_delivered = 0;
  std::uint64_t backhaul_dropped_loss = 0;
  std::uint64_t backhaul_dropped_partition = 0;
  std::uint64_t backhaul_dropped_queue = 0;
  std::uint64_t backhaul_dropped_crash = 0;
  std::uint64_t backhaul_duplicated = 0;
  std::uint64_t backhaul_reordered = 0;
  double backhaul_latency_sum_s = 0.0;
  // --- BS capacity model (sim/bs_capacity.hpp) ---
  // Conservation: bs_jobs_submitted == bs_jobs_served + bs_queue_shed +
  // bs_jobs_flushed + bs_jobs_inflight_end (background jobs excluded
  // throughout; they consume capacity but are not UE-visible work).
  int bs_jobs_submitted = 0;      ///< UE jobs offered to a station
  int bs_jobs_served = 0;         ///< jobs whose service completed
  int bs_jobs_queued = 0;         ///< served jobs that had to wait
  int bs_queue_shed = 0;          ///< jobs shed on a full signaling queue
  int bs_jobs_flushed = 0;        ///< queued jobs lost to a BS crash
  int bs_jobs_inflight_end = 0;   ///< still scheduled at the horizon
  double bs_queue_wait_sum_s = 0.0;  ///< summed wait over served jobs
  int admission_rejects = 0;      ///< busy-rejects received by the source
  int admission_backoff_retries = 0;  ///< hint-honoring re-attempts
  int bs_crashes = 0;             ///< BS deaths (crash windows + region
                                  ///< outage members); global in fleets
  int bs_crash_dropped_msgs = 0;  ///< signaling addressed to a dead BS
  int stale_context_responses = 0;  ///< context fetches answered stale
  // --- Correlated faults / cascade resilience ---
  // World-global like bs_crashes (every UE of a fleet counts the same
  // cascade events; merge takes the max and the fleet report checks
  // agreement): cascade_jobs_injected / cascade_activations. Genuinely
  // per-UE (merge sums them): every breaker_* and load_ad_* counter.
  int cascade_jobs_injected = 0;  ///< background jobs injected by cascade
  int cascade_activations = 0;    ///< neighbor top-up events (kCascadeInject)
  int breaker_trips = 0;          ///< per-target breakers opened
  int breaker_probes = 0;         ///< half-open probe preparations allowed
  int breaker_closes = 0;         ///< probes that closed a breaker
  int breaker_skips = 0;          ///< candidate cells hidden while open
  int load_ads_received = 0;      ///< load advertisements applied
  int storm_jitter_applied = 0;   ///< backoff retries jittered
  /// Oldest advertisement actually exposed to a manager (age at use, s);
  /// the invariant checker asserts <= load_ad_staleness_s.
  double load_ad_age_max_s = 0.0;
  /// Data-plane accounting (§8 "On data speed"): Shannon capacity of the
  /// serving link averaged over the whole run (zero while in outage) and
  /// the fraction of time without radio connectivity.
  double mean_throughput_bps = 0.0;
  double downtime_fraction = 0.0;
  /// Serving-link SNR samples from the 5 s windows preceding each failure
  /// (decimated) — the Fig. 2b signaling-loss analysis window.
  std::vector<double> pre_failure_snrs_db;
  /// Cross-cutting invariant violations found by an attached
  /// rem::testkit::InvariantChecker (written in its on_run_end); 0 when no
  /// checker was attached or the run was clean.
  int invariant_violations = 0;
  /// Per-event signaling log (only when SimConfig::record_events).
  EventLog events;

  double failure_ratio() const {
    const int denom = handovers + failures;
    return denom > 0 ? static_cast<double>(failures) / denom : 0.0;
  }
  double failure_ratio_excluding_holes() const;
  double loop_frequency_s() const {
    return loop_episodes > 0 ? sim_time_s / loop_episodes : 0.0;
  }
};

/// Result of a fleet run: one SimStats per UE (indexed by UE id) plus the
/// deterministic aggregate merged in UE-id order (sim/fleet.hpp —
/// merge_fleet_stats documents which fields sum and which are global).
struct FleetResult {
  std::vector<SimStats> per_ue;
  SimStats aggregate;
};

class Simulator {
 public:
  Simulator(const RadioEnv& env, const SimConfig& cfg,
            const phy::BlerModel& bler, common::Rng rng);

  /// Run the full scenario with the given manager and return statistics.
  /// `pair_conflicts(cell_a, cell_b)` (CellId::cell values) marks loop
  /// episodes caused by policy conflicts; pass an empty function to skip.
  /// Executes on the driver named by SimConfig::engine; both drivers are
  /// bit-identical.
  SimStats run(MobilityManager& manager,
               const std::function<bool(int, int)>& pair_conflicts = {});

  /// Multi-UE fleet run on the event queue: cfg.fleet_size UEs share the
  /// radio environment, BsStation capacity, and backhaul transport, each
  /// with its own manager built by `make_manager(ue)` (called in UE-id
  /// order). UE 0 runs the scenario's exact single-UE parameters and RNG
  /// stream, so a fleet of one is bit-identical to run(); UEs 1..N-1
  /// derive mixed speeds and start offsets from per-UE forked streams
  /// (SimConfig::fleet). Per-UE stats come back indexed by UE id with the
  /// deterministic aggregate merged in UE-id order (sim/fleet.hpp).
  /// Throws std::invalid_argument when cfg.fleet_size < 1 or
  /// make_manager returns nullptr.
  FleetResult run_fleet(
      const std::function<std::unique_ptr<MobilityManager>(int)>&
          make_manager,
      const std::function<bool(int, int)>& pair_conflicts = {});

 private:
  const RadioEnv& env_;
  SimConfig cfg_;
  const phy::BlerModel& bler_;
  common::Rng rng_;
};

}  // namespace rem::sim
