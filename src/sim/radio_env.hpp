// Radio environment along a rail line: cell deployment, log-distance path
// loss, spatially correlated shadowing, and small-scale fading. The
// environment answers "what does cell c look like from track position x at
// time t" with both the instantaneous metric legacy management sees (RSRP
// with fast fading) and the stable delay-Doppler SNR REM sees.
#pragma once

#include "common/rng.hpp"
#include "mobility/cell.hpp"

#include <vector>

namespace rem::sim {

/// One deployed cell. Cells sharing `site` share the physical propagation
/// paths (the cross-band estimation opportunity: 53.4% of cells in the HSR
/// dataset are co-located with another).
struct Cell {
  mobility::CellId id;
  double site_pos_m = 0.0;      ///< position along the track
  double site_offset_m = 150.0; ///< lateral distance from the rails
  double carrier_hz = 2.0e9;
  double bandwidth_hz = 20e6;
  double tx_power_dbm = 46.0;
};

/// A stretch of track with no usable coverage (tunnel/cutting): every
/// cell's signal is attenuated below the connectable floor inside it.
struct HoleSegment {
  double start_m = 0.0;
  double length_m = 0.0;
};

struct PropagationConfig {
  double pathloss_exponent = 3.5;
  double ref_loss_db = 34.0;        ///< loss at 1 m (Hata-like anchor)
  double shadowing_sigma_db = 3.5;
  double shadowing_decorr_m = 80.0; ///< Gudmundson decorrelation distance
  /// Co-sited cells share the site's shadowing (same physical paths);
  /// each cell adds only this small frequency-dependent residual.
  double per_cell_shadow_sigma_db = 1.0;
  double per_cell_shadow_decorr_m = 25.0;
  /// Extra loss inside a coverage-hole segment.
  double hole_extra_loss_db = 45.0;
  double noise_floor_dbm = -101.0;  ///< thermal noise over 20 MHz + NF
  /// Residual fast-fading noise on the L1-filtered instantaneous metric
  /// (std dev, dB). Legacy RSRP feedback rides this; the delay-Doppler
  /// SNR averages it out (Fig. 11), leaving only `dd_residual_sigma_db`.
  double fading_sigma_db = 2.0;
  double dd_residual_sigma_db = 0.75;
};

/// A deployment plus per-cell correlated shadowing processes.
class RadioEnv {
 public:
  RadioEnv(std::vector<Cell> cells, PropagationConfig cfg,
           common::Rng rng, std::vector<HoleSegment> holes = {});

  const std::vector<Cell>& cells() const { return cells_; }
  const PropagationConfig& config() const { return cfg_; }

  /// Deterministic mean RSRP (path loss + shadowing, no fast fading).
  double mean_rsrp_dbm(std::size_t cell_idx, double track_pos_m) const;

  /// Instantaneous RSRP with fast fading — what legacy feedback measures.
  double instant_rsrp_dbm(std::size_t cell_idx, double track_pos_m,
                          common::Rng& rng) const;

  /// Stable delay-Doppler SNR (dB): fading averaged over the grid, small
  /// residual only — what REM's overlay measures.
  double dd_snr_db(std::size_t cell_idx, double track_pos_m,
                   common::Rng& rng) const;

  /// SNR corresponding to a given RSRP on this cell.
  double snr_db_from_rsrp(double rsrp_dbm) const;

  /// Index of the strongest cell by mean RSRP (coverage-hole cells
  /// excluded); returns -1 if everything is below `min_rsrp_dbm`.
  /// `exclude_idx` skips one cell — the simulator passes a crashed BS so
  /// re-establishment and failure classification never pick a dead cell.
  int best_cell(double track_pos_m, double min_rsrp_dbm,
                int exclude_idx = -1) const;

  /// Multi-exclusion variant for correlated faults: `excluded[i] != 0`
  /// skips cell i. Region outages kill a whole failure domain at once, so
  /// the simulator passes its dead-cell mask instead of a single index.
  int best_cell(double track_pos_m, double min_rsrp_dbm,
                const std::vector<char>& excluded) const;

  /// True if no usable cell covers this position (coverage hole).
  bool in_coverage_hole(double track_pos_m, double min_rsrp_dbm) const {
    return best_cell(track_pos_m, min_rsrp_dbm) < 0;
  }

  /// True if the position lies in a hole segment.
  bool position_in_hole(double track_pos_m) const;

 private:
  /// Correlated shadowing for a cell at a track position: the site's
  /// process plus the cell's small residual (AR(1) grids, interpolated).
  double shadowing_db(std::size_t cell_idx, double track_pos_m) const;
  double sample_grid(const std::vector<double>& grid,
                     double track_pos_m) const;

  std::vector<Cell> cells_;
  PropagationConfig cfg_;
  std::vector<HoleSegment> holes_;
  /// Per-site and per-cell residual shadowing grids, step `kShadowStep_m`.
  std::vector<std::vector<double>> site_shadow_grids_;
  std::vector<std::vector<double>> cell_shadow_grids_;
  std::vector<std::size_t> cell_site_grid_;  ///< cell idx -> site grid idx
  double track_len_m_ = 0.0;
  static constexpr double kShadowStep_m = 10.0;
};

/// Parameters for synthesizing a rail deployment.
struct DeploymentConfig {
  double route_len_m = 50e3;
  double site_spacing_mean_m = 1100.0;
  double site_spacing_jitter_m = 250.0;
  double site_offset_min_m = 80.0;    ///< paper: 80-550 m LOS distance
  double site_offset_max_m = 350.0;
  /// Probability a site hosts a second cell on another channel (the
  /// cross-band opportunity; 53.4% of cells share a site in the dataset).
  double colocated_second_cell_prob = 0.75;
  /// Fraction of sites *without* a corridor-layer (primary channel) cell:
  /// only a secondary-carrier cell covers them. Legacy multi-stage
  /// policies can miss these cells (Table 2's "missed cell" failures).
  double primary_missing_prob = 0.08;
  /// Available frequency channels (EARFCN-like ids paired with carriers).
  std::vector<std::pair<mobility::ChannelId, double>> channels = {
      {1825, 1.88e9}, {2452, 2.36e9}, {100, 2.11e9}};
  /// Corridor-layer bandwidth and the options for secondary cells (the
  /// datasets mix 5/10/15/20 MHz carriers — the Fig. 3 heterogeneity).
  double primary_bandwidth_hz = 20e6;
  std::vector<double> secondary_bandwidths_hz = {5e6, 10e6, 15e6, 20e6};
  /// Coverage holes: expected segments per km and their length range.
  double holes_per_km = 0.008;
  double hole_len_min_m = 120.0;
  double hole_len_max_m = 400.0;
  double tx_power_dbm = 46.0;
};

std::vector<Cell> make_rail_deployment(const DeploymentConfig& cfg,
                                       common::Rng& rng);

/// Sample coverage-hole segments along the route.
std::vector<HoleSegment> make_hole_segments(const DeploymentConfig& cfg,
                                            common::Rng& rng);

}  // namespace rem::sim
