// Signaling event records — the simulator's equivalent of the paper's
// MobileInsight captures: one timestamped row per control-plane event,
// exportable as CSV (trace/eventlog.hpp) for offline analysis.
#pragma once

#include <string>
#include <vector>

namespace rem::sim {

enum class EventKind {
  kMeasurementTriggered,  ///< policy fired, feedback generation started
  kReportDelivered,       ///< measurement report reached the base station
  kReportLost,            ///< report retransmissions exhausted
  kHoCommandDelivered,    ///< handover command reached the client
  kHoCommandLost,         ///< command lost in delivery
  kHandoverComplete,      ///< client connected to the target
  kRadioLinkFailure,      ///< T310 expired, connectivity lost
  kReestablished,         ///< connection re-established after RLF
  kFaultStart,            ///< fault window opened (target_cell = FaultKind)
  kFaultEnd,              ///< fault window closed (target_cell = FaultKind)
  kReportRetransmit,      ///< lost report re-sent (bounded backoff)
  kT304Expiry,            ///< handover execution failed at the target
  kHoCommandDuplicate,    ///< stale duplicate command executed instead
  kDegradedEnter,         ///< manager fell back to direct measurement
  kDegradedExit,          ///< manager resumed cross-band estimation
  kPrepRequest,           ///< HANDOVER REQUEST sent over the backhaul
  kPrepRetry,             ///< preparation timed out, request re-sent
  kPrepAck,               ///< target admitted (serving_snr_db = prep RTT s)
  kPrepReject,            ///< target refused admission
  kPrepFallback,          ///< preparation switched to the fallback target
  kPrepFailed,            ///< preparation exhausted retries and fallbacks
  kContextFetchFailed,    ///< context fetch exhausted retries in outage
  kBsQueueShed,           ///< BS signaling queue full: job explicitly shed
                          ///< (target_cell = station, snr = load fraction)
  kBsJobDone,             ///< BS job serviced (target_cell = station,
                          ///< serving_snr_db = queue wait seconds)
  kAdmissionReject,       ///< target busy-rejected HANDOVER REQUEST
                          ///< (serving_snr_db = backoff hint seconds)
  kAdmissionRetry,        ///< source honors the backoff hint and re-sends
  kBsCrash,               ///< BS died (target_cell = victim cell index)
  kBsRestart,             ///< BS came back stateless (target_cell = victim)
  kContextStale,          ///< restarted BS answered a context fetch with a
                          ///< stale-context indication
  kCascadeInject,         ///< cascade overload topped up a surviving
                          ///< neighbor of a dead BS (target_cell = station,
                          ///< serving_snr_db = jobs injected)
  kBreakerTrip,           ///< per-target circuit breaker opened
                          ///< (target_cell = tripped target)
  kBreakerProbe,          ///< breaker cool-down elapsed: half-open probe
                          ///< preparation allowed (target_cell = target)
  kBreakerClose,          ///< half-open probe succeeded, breaker closed
                          ///< (target_cell = target)
};

/// Stable identifier used in CSV logs. Throws std::invalid_argument on a
/// value outside the enum instead of returning a placeholder.
std::string event_kind_name(EventKind k);

struct SignalingEvent {
  double t_s = 0.0;
  EventKind kind = EventKind::kMeasurementTriggered;
  int serving_cell = -1;
  int target_cell = -1;      ///< -1 when not applicable
  double serving_snr_db = 0.0;
  /// Owning UE (fleet runs); always 0 in single-UE runs. Global events
  /// (fault edges, BS crash/restart) are logged once per UE, each copy
  /// stamped with that UE's id and serving cell.
  int ue = 0;
};

using EventLog = std::vector<SignalingEvent>;

}  // namespace rem::sim
