#!/usr/bin/env bash
# Build with REM_COVERAGE=ON, run the tier-1 suite, and print per-directory
# line coverage for src/.
#
#   scripts/check_coverage.sh           # tier-1 tests only (fast)
#   scripts/check_coverage.sh -L ""     # everything ctest knows about
#
# Extra arguments are forwarded to ctest. Uses gcovr when available, else
# lcov, else falls back to summarizing raw gcov output. The instrumented
# tree lands in build-coverage/ so it never pollutes the default build/.
set -euo pipefail

cd "$(dirname "$0")/.."
build="build-coverage"
ctest_args=("$@")
if [ ${#ctest_args[@]} -eq 0 ]; then
  ctest_args=(-L tier1)
fi

cmake -B "${build}" -S . -DREM_COVERAGE=ON >/dev/null
cmake --build "${build}" -j"$(nproc)"
# Stale counters from earlier runs would skew the report.
find "${build}" -name '*.gcda' -delete
ctest --test-dir "${build}" --output-on-failure -j"$(nproc)" \
      "${ctest_args[@]}"

echo
echo "== line coverage by directory (src/) =="
if command -v gcovr >/dev/null 2>&1; then
  gcovr --root . --filter 'src/' --object-directory "${build}" \
        --sort-key uncovered-percent --print-summary
elif command -v lcov >/dev/null 2>&1; then
  lcov --quiet --capture --directory "${build}" \
       --output-file "${build}/coverage.info"
  lcov --quiet --extract "${build}/coverage.info" "$(pwd)/src/*" \
       --output-file "${build}/coverage-src.info"
  lcov --list "${build}/coverage-src.info"
else
  # Raw-gcov fallback: aggregate "Lines executed" per source directory.
  find "${build}" -name '*.gcda' | while read -r gcda; do
    gcov -p -o "$(dirname "${gcda}")" "${gcda}" >/dev/null 2>&1 || true
  done
  # gcov -p writes mangled names like '#root#repo#src#sim#simulator.cpp.gcov'
  # into the current directory; fold them into per-directory totals.
  awk_report() {
    python3 - "$@" <<'EOF'
import re, sys, collections, glob, os
per_dir = collections.defaultdict(lambda: [0, 0])
for path in glob.glob("*.gcov"):
    m = re.search(r"src[#/]([a-z_]+)[#/][^#/]+\.gcov$", path)
    if not m:
        continue
    covered = total = 0
    with open(path, errors="replace") as f:
        for line in f:
            parts = line.split(":", 2)
            if len(parts) < 3:
                continue
            count = parts[0].strip()
            if count == "-":
                continue
            total += 1
            if count not in ("#####", "====="):
                covered += 1
    per_dir["src/" + m.group(1)][0] += covered
    per_dir["src/" + m.group(1)][1] += total
for d in sorted(per_dir):
    c, t = per_dir[d]
    pct = 100.0 * c / t if t else 0.0
    print(f"{d:24s} {c:6d}/{t:<6d} {pct:6.1f}%")
for path in glob.glob("*.gcov"):
    os.remove(path)
EOF
  }
  awk_report
fi
