#!/usr/bin/env bash
# Build and run the full ctest suite under ASan+UBSan and under TSan —
# including test_dsp_batch and the bench_perf --smoke perf label, so the
# batched SoA kernels (sfft_batch/svd_batch/estimate_batch and their
# arena) run instrumented on every sanitizer pass.
#
#   scripts/check_sanitizers.sh            # both presets
#   scripts/check_sanitizers.sh asan-ubsan # just address,undefined
#   scripts/check_sanitizers.sh tsan       # just thread
#
# Build trees land in build-<preset>/ next to the normal build/ so the
# instrumented configurations never pollute the default one.
set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1" sanitize="$2"
  local dir="build-${preset}"
  echo "== ${preset}: REM_SANITIZE=${sanitize} =="
  cmake -B "${dir}" -S . -DREM_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j"$(nproc)"
  ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)"
}

presets="${1:-all}"
case "${presets}" in
  asan-ubsan) run_preset asan-ubsan "address,undefined" ;;
  tsan)       run_preset tsan thread ;;
  all)
    run_preset asan-ubsan "address,undefined"
    run_preset tsan thread
    ;;
  *)
    echo "usage: $0 [all|asan-ubsan|tsan]" >&2
    exit 2
    ;;
esac
echo "sanitizer presets clean: ${presets}"
