#!/usr/bin/env bash
# Randomized-schedule chaos soak under sanitizers: build the ASan+UBSan
# and TSan trees (same presets and directories as check_sanitizers.sh)
# and run the `soak` ctest label in each — test_soak drives every
# registered FaultKind (all twelve, including region_outage and
# cascade_overload) from seeded random schedules with the invariant
# checker attached, so memory bugs, UB, data races, and protocol-state
# violations all fail the run. The cascade-resilience suite
# (tests/test_cascade.cpp: breaker FSM, cascade-storm fleets, engine
# bit-identity, 1/2/8-thread determinism) runs in the same trees so the
# correlated-fault paths soak under both sanitizers too.
#
#   scripts/check_soak.sh            # both presets
#   scripts/check_soak.sh asan-ubsan # just address,undefined
#   scripts/check_soak.sh tsan       # just thread
#
# Build trees land in build-<preset>/ next to the normal build/, shared
# with check_sanitizers.sh so repeat runs are incremental.
set -euo pipefail

cd "$(dirname "$0")/.."

run_preset() {
  local preset="$1" sanitize="$2"
  local dir="build-${preset}"
  echo "== soak ${preset}: REM_SANITIZE=${sanitize} =="
  cmake -B "${dir}" -S . -DREM_SANITIZE="${sanitize}" >/dev/null
  cmake --build "${dir}" -j"$(nproc)" --target test_soak test_cascade
  ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)" -L soak
  ctest --test-dir "${dir}" --output-on-failure -j"$(nproc)" \
    -R '^(CircuitBreaker|CascadeSim)\.'
}

presets="${1:-all}"
case "${presets}" in
  asan-ubsan) run_preset asan-ubsan "address,undefined" ;;
  tsan)       run_preset tsan thread ;;
  all)
    run_preset asan-ubsan "address,undefined"
    run_preset tsan thread
    ;;
  *)
    echo "usage: $0 [all|asan-ubsan|tsan]" >&2
    exit 2
    ;;
esac
echo "chaos soak clean: ${presets}"
