#!/usr/bin/env bash
# Documentation lint, wired into ctest under the `docs` label:
#   1. every intra-repo markdown link (relative path, not http/mailto/#)
#      in the top-level *.md files must point at an existing file;
#   2. every public header in src/obs must carry a file-top comment and a
#      doc comment on each top-level class/struct, so the observability
#      API cannot drift undocumented.
# Exits non-zero listing every violation; prints nothing on success
# beyond a one-line summary.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root" || exit 1

fail=0

# --- 1. intra-repo markdown links ------------------------------------------
for md in ./*.md; do
  # Extract (target) parts of [text](target) links, one per line. Inline
  # code spans are not parsed; our docs only use plain links.
  targets=$(grep -o ']([^)]*)' "$md" | sed 's/^](//; s/)$//')
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"           # strip any #anchor
    [ -z "$path" ] && continue
    if [ ! -e "$repo_root/$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      fail=1
    fi
  done <<EOF
$targets
EOF
done

# --- 2. SCENARIOS.md <-> scenarios/*.json consistency ----------------------
# The catalogue and the library must agree in both directions: every
# shipped scenario file has a `### <name>` entry in SCENARIOS.md, and
# every catalogue entry points at a file that exists. A scenario added
# without docs (or docs for a deleted scenario) fails the docs label.
if [ -d scenarios ] && [ -f SCENARIOS.md ]; then
  for f in scenarios/*.json; do
    name="$(basename "$f" .json)"
    if ! grep -q "^### ${name}\$" SCENARIOS.md; then
      echo "UNDOCUMENTED SCENARIO: $f has no '### ${name}' entry in SCENARIOS.md"
      fail=1
    fi
  done
  while IFS= read -r name; do
    if [ ! -f "scenarios/${name}.json" ]; then
      echo "STALE CATALOGUE ENTRY: SCENARIOS.md '### ${name}' has no scenarios/${name}.json"
      fail=1
    fi
  done <<EOF
$(grep '^### [a-z0-9_]*$' SCENARIOS.md | sed 's/^### //')
EOF
fi

# --- 3. doc comments on src/obs public headers -----------------------------
for hdr in src/obs/*.hpp; do
  if ! head -n 1 "$hdr" | grep -q '^//'; then
    echo "MISSING FILE COMMENT: $hdr must open with a // comment block"
    fail=1
  fi
  # Every top-level class/struct must be preceded by a comment line.
  violations=$(awk '
    /^(class|struct) [A-Za-z_]+/ {
      if (prev !~ /^\/\// && prev !~ /\*\//)
        print FILENAME ":" FNR ": undocumented: " $0
    }
    { prev = $0 }
  ' "$hdr")
  if [ -n "$violations" ]; then
    echo "$violations"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: ok (markdown links + scenario catalogue + src/obs header docs)"
