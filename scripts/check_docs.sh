#!/usr/bin/env bash
# Documentation lint, wired into ctest under the `docs` label:
#   1. every intra-repo markdown link (relative path, not http/mailto/#)
#      in the top-level *.md files must point at an existing file;
#   2. every public header in src/obs must carry a file-top comment and a
#      doc comment on each top-level class/struct, so the observability
#      API cannot drift undocumented.
# Exits non-zero listing every violation; prints nothing on success
# beyond a one-line summary.
set -u

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root" || exit 1

fail=0

# --- 1. intra-repo markdown links ------------------------------------------
for md in ./*.md; do
  # Extract (target) parts of [text](target) links, one per line. Inline
  # code spans are not parsed; our docs only use plain links.
  targets=$(grep -o ']([^)]*)' "$md" | sed 's/^](//; s/)$//')
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path="${target%%#*}"           # strip any #anchor
    [ -z "$path" ] && continue
    if [ ! -e "$repo_root/$path" ]; then
      echo "BROKEN LINK: $md -> $target"
      fail=1
    fi
  done <<EOF
$targets
EOF
done

# --- 2. SCENARIOS.md <-> scenarios/*.json consistency ----------------------
# The catalogue and the library must agree in both directions: every
# shipped scenario file has a `### <name>` entry in SCENARIOS.md, and
# every catalogue entry points at a file that exists. A scenario added
# without docs (or docs for a deleted scenario) fails the docs label.
if [ -d scenarios ] && [ -f SCENARIOS.md ]; then
  for f in scenarios/*.json; do
    name="$(basename "$f" .json)"
    if ! grep -q "^### ${name}\$" SCENARIOS.md; then
      echo "UNDOCUMENTED SCENARIO: $f has no '### ${name}' entry in SCENARIOS.md"
      fail=1
    fi
  done
  while IFS= read -r name; do
    if [ ! -f "scenarios/${name}.json" ]; then
      echo "STALE CATALOGUE ENTRY: SCENARIOS.md '### ${name}' has no scenarios/${name}.json"
      fail=1
    fi
  done <<EOF
$(grep '^### [a-z0-9_]*$' SCENARIOS.md | sed 's/^### //')
EOF
fi

# --- 3. DESIGN.md fault-kind table <-> fault_kind_name() -------------------
# The §6 fault table and the registered FaultKinds must agree in both
# directions: every wire name returned by fault_kind_name() appears as a
# `` `name` `` table row in DESIGN.md, and every fault-kind-looking row in
# the table names a registered kind. A kind added without docs (or docs
# for a deleted kind) fails the docs label.
if [ -f DESIGN.md ] && [ -f src/sim/fault_injector.cpp ]; then
  code_kinds=$(sed -n 's/.*case FaultKind::[A-Za-z]*: return "\([a-z0-9_]*\)";.*/\1/p' \
    src/sim/fault_injector.cpp | sort -u)
  if [ -z "$code_kinds" ]; then
    echo "FAULT KIND LINT BROKEN: no names parsed from fault_kind_name()"
    fail=1
  fi
  # Table rows look like `| `name` | ... |`; restrict to the documented
  # wire-name alphabet so prose rows never false-positive.
  doc_kinds=$(grep -o '^| `[a-z0-9_]*`' DESIGN.md | sed 's/^| `//; s/`$//' | sort -u)
  for kind in $code_kinds; do
    if ! printf '%s\n' "$doc_kinds" | grep -qx "$kind"; then
      echo "UNDOCUMENTED FAULT KIND: fault_kind_name() returns '$kind' but DESIGN.md has no \`$kind\` table row"
      fail=1
    fi
  done
  for kind in $doc_kinds; do
    case "$kind" in
      # Non-fault tables in DESIGN.md also use `| `slug` |` rows; only
      # lint rows whose slug collides with the fault-kind namespace.
      signaling_*|pilot_*|processing_*|coverage_*|command_*|backhaul_*|bs_*|region_*|cascade_*)
        if ! printf '%s\n' "$code_kinds" | grep -qx "$kind"; then
          echo "STALE FAULT KIND ROW: DESIGN.md documents \`$kind\` but fault_kind_name() never returns it"
          fail=1
        fi
        ;;
    esac
  done
fi

# --- 4. doc comments on src/obs public headers -----------------------------
for hdr in src/obs/*.hpp; do
  if ! head -n 1 "$hdr" | grep -q '^//'; then
    echo "MISSING FILE COMMENT: $hdr must open with a // comment block"
    fail=1
  fi
  # Every top-level class/struct must be preceded by a comment line.
  violations=$(awk '
    /^(class|struct) [A-Za-z_]+/ {
      if (prev !~ /^\/\// && prev !~ /\*\//)
        print FILENAME ":" FNR ": undocumented: " $0
    }
    { prev = $0 }
  ' "$hdr")
  if [ -n "$violations" ]; then
    echo "$violations"
    fail=1
  fi
done

if [ "$fail" -ne 0 ]; then
  echo "check_docs: FAILED"
  exit 1
fi
echo "check_docs: ok (markdown links + scenario catalogue + fault-kind table + src/obs header docs)"
