#!/usr/bin/env bash
# The pre-commit loop: configure, build, and run the tier-1 test suite
# plus the documentation lint (check_docs.sh, ctest label `docs`), the
# perf smoke (`bench_perf --smoke`, label `perf`, which exercises the
# batched DSP kernels and their correctness/allocation gates), and the
# fleet determinism layer (label `fleet`: multi-UE engine pinned against
# the single-UE simulator and across thread counts) — the fast checks
# every change must keep green (ROADMAP.md).
#
#   scripts/check_tier1.sh              # tier1 + docs + perf + fleet
#   scripts/check_tier1.sh --all        # every ctest label (slow/chaos/
#                                       # golden included)
#   scripts/check_tier1.sh --full       # --all plus the sanitizer chaos
#                                       # soak (scripts/check_soak.sh)
#   scripts/check_tier1.sh --scenarios  # also smoke-compile every
#                                       # scenarios/*.json and run the
#                                       # shortest end to end under the
#                                       # invariant checker
#                                       # (bench_fleet --validate)
#
# Any further arguments are forwarded to ctest. Uses the default build/
# tree; pass a different one via BUILD_DIR.
set -euo pipefail

cd "$(dirname "$0")/.."
build="${BUILD_DIR:-build}"

ctest_args=(-L 'tier1|docs|perf|fleet')
soak=0
scenarios=0
if [ "${1:-}" = "--all" ]; then
  ctest_args=()
  shift
elif [ "${1:-}" = "--full" ]; then
  ctest_args=()
  soak=1
  shift
elif [ "${1:-}" = "--scenarios" ]; then
  scenarios=1
  shift
fi
ctest_args+=("$@")

cmake -B "${build}" -S . >/dev/null
cmake --build "${build}" -j"$(nproc)"
ctest --test-dir "${build}" --output-on-failure -j"$(nproc)" \
      "${ctest_args[@]+"${ctest_args[@]}"}"

if [ "${soak}" = 1 ]; then
  scripts/check_soak.sh
fi

if [ "${scenarios}" = 1 ]; then
  # Compile every library scenario at its authored parameters and run the
  # shortest one end to end (invariant checkers attached, gates enforced).
  "${build}/bench/bench_fleet" --validate
fi
