#!/usr/bin/env bash
# Regenerate the golden-trace regression corpus under tests/golden/.
#
# Run this after an *intentional* behavior change, then review the diff of
# tests/golden/*.json — it documents exactly which statistics moved — and
# commit it together with the change. test_golden_traces fails until the
# committed digests match the code again.
#
#   scripts/update_goldens.sh [build_dir]   # default: build/
set -euo pipefail

cd "$(dirname "$0")/.."
build="${1:-build}"

cmake -B "${build}" -S . >/dev/null
cmake --build "${build}" --target golden_gen -j"$(nproc)"
"${build}/tests/golden_gen" tests/golden

echo "golden corpus refreshed; review 'git diff tests/golden/' before committing"
