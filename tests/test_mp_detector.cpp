#include "channel/multipath.hpp"
#include "channel/noise.hpp"
#include "channel/profiles.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "phy/mp_detector.hpp"
#include "phy/otfs.hpp"

#include <gtest/gtest.h>

namespace rp = rem::phy;
namespace rch = rem::channel;
using rem::dsp::Matrix;
using rem::dsp::cd;

namespace {

rp::Numerology small_grid() {
  rp::Numerology num;
  num.num_subcarriers = 16;
  num.num_symbols = 8;
  num.cp_len = 4;
  return num;
}

// Run the full OTFS chain and detect with MP; returns symbol error count.
struct ChainResult {
  std::size_t symbol_errors = 0;
  std::size_t total = 0;
  rp::MpResult mp;
  std::vector<cd> tx_syms;
};

ChainResult run_chain(const rch::MultipathChannel& ch, double snr_db,
                      rp::Modulation mod, rem::common::Rng& rng,
                      const rp::MpDetectorConfig& cfg = {}) {
  const auto num = small_grid();
  const std::size_t m = num.num_subcarriers;
  const std::size_t n = num.num_symbols;
  // Random data grid.
  std::vector<std::uint8_t> bits(m * n * rp::bits_per_symbol(mod));
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  const auto syms = rp::qam_modulate(bits, mod);
  Matrix dd(m, n);
  std::size_t idx = 0;
  for (std::size_t col = 0; col < n; ++col)
    for (std::size_t row = 0; row < m; ++row) dd(row, col) = syms[idx++];

  rp::OtfsModem modem(num);
  auto rx = ch.apply_to_signal(modem.modulate(dd), num.sample_rate_hz());
  rch::add_awgn(rx, rch::noise_power_for_snr_db(snr_db), rng);
  const Matrix y = modem.demodulate(rx);

  // Channel taps from the analytic DD samples (pilot-grade knowledge).
  const auto dd_h = ch.dd_matrix(m, n, num.subcarrier_spacing_hz,
                                 num.symbol_duration_s(), num.cp_len);
  const auto taps = rp::extract_dd_taps(dd_h);

  ChainResult out;
  out.mp = rp::mp_detect(y, taps, mod,
                         rch::noise_power_for_snr_db(snr_db), cfg);
  out.tx_syms = syms;
  out.total = syms.size();
  const auto& constel = rp::constellation(mod);
  for (std::size_t i = 0; i < syms.size(); ++i) {
    // Hard decision from the posterior mean.
    std::size_t best = 0;
    double bd = 1e18;
    for (std::size_t s = 0; s < constel.size(); ++s) {
      const double d = std::norm(out.mp.symbols[i] - constel[s]);
      if (d < bd) {
        bd = d;
        best = s;
      }
    }
    if (std::abs(constel[best] - syms[i]) > 1e-9) ++out.symbol_errors;
  }
  return out;
}

}  // namespace

TEST(DdTaps, ExtractFindsOnGridPath) {
  const auto num = small_grid();
  rch::Path p;
  p.gain = cd(0.9, 0.2);
  p.delay_s = 2.0 * num.delay_res_s();
  p.doppler_hz = 3.0 * num.doppler_res_hz();
  rch::MultipathChannel ch({p});
  const auto dd_h = ch.dd_matrix(16, 8, num.subcarrier_spacing_hz,
                                 num.symbol_duration_s(), num.cp_len);
  const auto taps = rp::extract_dd_taps(dd_h);
  ASSERT_FALSE(taps.empty());
  EXPECT_EQ(taps[0].delay_bin, 2u);
  EXPECT_EQ(taps[0].doppler_bin, 3u);
  EXPECT_LT(std::abs(std::abs(taps[0].gain) - std::abs(p.gain)), 0.05);
}

TEST(DdTaps, EmptyChannel) {
  EXPECT_TRUE(rp::extract_dd_taps(Matrix(8, 8)).empty());
}

TEST(DdTaps, CapRespected) {
  rem::common::Rng rng(1);
  Matrix h(16, 16);
  for (auto& x : h.data()) x = rng.complex_gaussian(1.0);
  EXPECT_LE(rp::extract_dd_taps(h, 0.0, 10).size(), 10u);
}

TEST(MpDetector, PerfectAtHighSnrSinglePath) {
  rem::common::Rng rng(2);
  rch::Path p;
  p.gain = cd(1, 0);
  rch::MultipathChannel ch({p});
  const auto res = run_chain(ch, 25.0, rp::Modulation::kQPSK, rng);
  EXPECT_EQ(res.symbol_errors, 0u);
  EXPECT_GE(res.mp.iterations, 1u);
}

TEST(MpDetector, ResolvesOnGridTwoPathInterference) {
  // Two on-grid paths: the DD twisted convolution mixes symbols; MP must
  // untangle them at high SNR.
  rem::common::Rng rng(3);
  const auto num = small_grid();
  rch::Path p1, p2;
  p1.gain = cd(0.85, 0.0);
  p2.gain = cd(0.4, 0.3);
  p2.delay_s = 1.0 * num.delay_res_s();
  p2.doppler_hz = 2.0 * num.doppler_res_hz();
  rch::MultipathChannel ch({p1, p2});
  ch.normalize_power();
  const auto res = run_chain(ch, 24.0, rp::Modulation::kQPSK, rng);
  EXPECT_LE(res.symbol_errors, res.total / 50);
}

TEST(MpDetector, LlrSignsMatchDecisions) {
  rem::common::Rng rng(4);
  rch::Path p;
  p.gain = cd(1, 0);
  rch::MultipathChannel ch({p});
  const auto res = run_chain(ch, 20.0, rp::Modulation::kQPSK, rng);
  // For every correctly detected symbol the LLR signs must reproduce the
  // transmitted bits.
  const auto bits = rp::qam_demodulate_hard(res.tx_syms,
                                            rp::Modulation::kQPSK);
  std::size_t checked = 0;
  for (std::size_t i = 0; i < res.total; ++i) {
    if (std::abs(res.mp.symbols[i] - res.tx_syms[i]) > 0.3) continue;
    for (std::size_t b = 0; b < 2; ++b) {
      const double llr = res.mp.llrs[i * 2 + b];
      EXPECT_EQ(llr < 0, bits[i * 2 + b] == 1) << "sym " << i;
      ++checked;
    }
  }
  EXPECT_GT(checked, res.total);  // most symbols were confident
}

TEST(MpDetector, DegradesGracefullyAtLowSnr) {
  rem::common::Rng rng(5);
  rch::Path p;
  p.gain = cd(1, 0);
  rch::MultipathChannel ch({p});
  const auto good = run_chain(ch, 18.0, rp::Modulation::kQPSK, rng);
  const auto bad = run_chain(ch, -5.0, rp::Modulation::kQPSK, rng);
  EXPECT_LT(good.symbol_errors, bad.symbol_errors);
  EXPECT_GT(bad.symbol_errors, 0u);
}

TEST(MpDetector, HandlesHstDopplerChannel) {
  rem::common::Rng rng(6);
  rch::ChannelDrawConfig draw;
  draw.profile = rch::Profile::kHST350;
  draw.speed_mps = rem::common::kmh_to_mps(350.0);
  draw.carrier_hz = 2.0e9;
  std::size_t errors = 0, total = 0;
  for (int trial = 0; trial < 5; ++trial) {
    const auto ch = rch::draw_channel(draw, rng);
    const auto res = run_chain(ch, 16.0, rp::Modulation::kQPSK, rng);
    errors += res.symbol_errors;
    total += res.total;
  }
  // Off-grid leakage makes this imperfect, but the symbol error rate
  // should be low at 16 dB.
  EXPECT_LT(static_cast<double>(errors) / static_cast<double>(total),
            0.08)
      << errors << "/" << total;
}

TEST(MpDetector, EmptyTapsReturnsZeros) {
  const auto res =
      rp::mp_detect(Matrix(4, 4), {}, rp::Modulation::kQPSK, 0.1);
  EXPECT_EQ(res.symbols.size(), 16u);
  for (const auto& s : res.symbols) EXPECT_EQ(s, cd(0, 0));
}
