#include "channel/geometry.hpp"
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rch = rem::channel;

namespace {
rch::GeometryConfig base_cfg() {
  rch::GeometryConfig cfg;
  cfg.bs_x_m = 1000.0;
  cfg.bs_y_m = 150.0;
  cfg.carrier_hz = 2.0e9;
  cfg.speed_mps = rem::common::kmh_to_mps(350.0);
  return cfg;
}
}  // namespace

TEST(Geometry, LosDopplerSignFlipsAtSite) {
  const rch::GeometricHstChannel ch(base_cfg());
  EXPECT_GT(ch.los_doppler_hz(0.0), 0.0);      // approaching
  EXPECT_LT(ch.los_doppler_hz(2000.0), 0.0);   // receding
  EXPECT_NEAR(ch.los_doppler_hz(1000.0), 0.0, 1.0);  // abeam
}

TEST(Geometry, LosDopplerApproachesNuMax) {
  const auto cfg = base_cfg();
  const rch::GeometricHstChannel ch(cfg);
  const double nu_max =
      rem::common::max_doppler_hz(cfg.speed_mps, cfg.carrier_hz);
  // Far from the site the LOS is nearly aligned with the track.
  EXPECT_NEAR(ch.los_doppler_hz(-5000.0), nu_max, nu_max * 0.01);
  EXPECT_NEAR(ch.los_doppler_hz(7000.0), -nu_max, nu_max * 0.01);
}

TEST(Geometry, LosDelayMinimalAbeam) {
  const rch::GeometricHstChannel ch(base_cfg());
  const double at_site = ch.los_delay_s(1000.0);
  EXPECT_LT(at_site, ch.los_delay_s(0.0));
  EXPECT_LT(at_site, ch.los_delay_s(2000.0));
  EXPECT_NEAR(at_site * rem::common::kSpeedOfLight, 150.0, 0.5);
}

TEST(Geometry, SnapshotIsNormalizedMultipath) {
  auto cfg = base_cfg();
  rem::common::Rng rng(3);
  cfg.scatterers = rch::make_scatterer_field(cfg.bs_x_m, 6, rng);
  const rch::GeometricHstChannel ch(cfg);
  const auto snap = ch.snapshot(600.0);
  EXPECT_EQ(snap.num_paths(), 7u);  // LOS + 6 scatterers
  EXPECT_NEAR(snap.total_power(), 1.0, 1e-9);
}

TEST(Geometry, ConsecutiveSnapshotsEvolveSlowly) {
  // Appendix A: path delays/Dopplers drift slowly under inertia. Over
  // 10 ms at 350 km/h (~1 m of travel), the LOS Doppler changes by well
  // under 1% of nu_max, and the delay by nanoseconds.
  auto cfg = base_cfg();
  const rch::GeometricHstChannel ch(cfg);
  const double nu_max =
      rem::common::max_doppler_hz(cfg.speed_mps, cfg.carrier_hz);
  for (double x : {0.0, 500.0, 900.0, 1500.0}) {
    const double dx = cfg.speed_mps * 0.010;
    EXPECT_LT(std::abs(ch.los_doppler_hz(x + dx) - ch.los_doppler_hz(x)),
              0.01 * nu_max)
        << "x=" << x;
    EXPECT_LT(std::abs(ch.los_delay_s(x + dx) - ch.los_delay_s(x)), 5e-9);
  }
}

TEST(Geometry, SnapshotPhasesAreCoherent) {
  // Moving half a wavelength toward the BS should rotate the LOS phase by
  // ~pi (path shortens by ~cos(theta) * dx); verify the phase evolves
  // continuously rather than randomly.
  auto cfg = base_cfg();
  const rch::GeometricHstChannel ch(cfg);
  const double x0 = 0.0;  // LOS nearly along track: cos ~ 0.989
  const auto s0 = ch.snapshot(x0);
  const double lam = rem::common::wavelength_m(cfg.carrier_hz);
  const auto s1 = ch.snapshot(x0 + lam / 8.0);
  const double dphi = std::arg(s1.paths()[0].gain /
                               s0.paths()[0].gain);
  // Path shortens by ~cos(theta)*lam/8 -> phase increases ~2pi/8*cos.
  EXPECT_NEAR(dphi, 2.0 * M_PI / 8.0 * 0.989, 0.05);
}

TEST(Geometry, ScattererFieldWithinBounds) {
  rem::common::Rng rng(5);
  const auto field = rch::make_scatterer_field(2000.0, 50, rng);
  EXPECT_EQ(field.size(), 50u);
  for (const auto& s : field) {
    EXPECT_GE(s.x_m, 1200.0);
    EXPECT_LE(s.x_m, 2800.0);
    EXPECT_GE(std::abs(s.y_m), 20.0);
    EXPECT_LE(std::abs(s.y_m), 400.0);
    EXPECT_LE(s.gain_db, -6.0);
  }
}
