#include "common/units.hpp"
#include "sim/radio_env.hpp"
#include "common/stats.hpp"
#include "sim/tcp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rs = rem::sim;

namespace {
rs::RadioEnv small_env(std::uint64_t seed = 1,
                       std::vector<rs::HoleSegment> holes = {}) {
  rem::common::Rng rng(seed);
  rs::DeploymentConfig dc;
  dc.route_len_m = 10e3;
  dc.site_spacing_mean_m = 1000.0;
  dc.site_spacing_jitter_m = 100.0;
  auto cells = rs::make_rail_deployment(dc, rng);
  return rs::RadioEnv(std::move(cells), rs::PropagationConfig{}, rng.fork(),
                      std::move(holes));
}
}  // namespace

TEST(Deployment, CoversRouteWithSites) {
  rem::common::Rng rng(2);
  rs::DeploymentConfig dc;
  dc.route_len_m = 20e3;
  dc.site_spacing_mean_m = 1000.0;
  const auto cells = rs::make_rail_deployment(dc, rng);
  ASSERT_FALSE(cells.empty());
  // Roughly route/spacing sites; each hosting 1-2 cells.
  int max_site = 0;
  for (const auto& c : cells) max_site = std::max(max_site, c.id.base_station);
  EXPECT_NEAR(max_site, 19, 4);
  EXPECT_GE(cells.size(), static_cast<std::size_t>(max_site));
  // Unique cell ids.
  std::set<int> ids;
  for (const auto& c : cells) ids.insert(c.id.cell);
  EXPECT_EQ(ids.size(), cells.size());
}

TEST(Deployment, PrimaryLayerSharedChannel) {
  rem::common::Rng rng(3);
  rs::DeploymentConfig dc;
  dc.route_len_m = 40e3;
  const auto cells = rs::make_rail_deployment(dc, rng);
  // Apart from the few corridor-gap sites, the first cell of every site
  // uses the corridor channel.
  std::map<int, rem::mobility::ChannelId> first_channel;
  for (const auto& c : cells) first_channel.try_emplace(c.id.base_station,
                                                        c.id.channel);
  int on_corridor = 0;
  for (const auto& [site, ch] : first_channel)
    on_corridor += (ch == dc.channels[0].first);
  const double frac = static_cast<double>(on_corridor) /
                      static_cast<double>(first_channel.size());
  EXPECT_NEAR(frac, 1.0 - dc.primary_missing_prob, 0.1);
}

TEST(Deployment, ColocationProbabilityRespected) {
  rem::common::Rng rng(4);
  rs::DeploymentConfig dc;
  dc.route_len_m = 200e3;
  dc.colocated_second_cell_prob = 0.75;
  const auto cells = rs::make_rail_deployment(dc, rng);
  std::map<int, int> cells_per_site;
  for (const auto& c : cells) ++cells_per_site[c.id.base_station];
  int two = 0;
  for (const auto& [site, n] : cells_per_site) two += (n == 2);
  const double frac =
      static_cast<double>(two) / static_cast<double>(cells_per_site.size());
  // Only corridor-layer sites can host a second cell.
  const double expected =
      (1.0 - dc.primary_missing_prob) * dc.colocated_second_cell_prob;
  EXPECT_NEAR(frac, expected, 0.08);
}

TEST(RadioEnv, RsrpDecaysWithDistance) {
  const auto env = small_env();
  const auto& c0 = env.cells()[0];
  const double near = env.mean_rsrp_dbm(0, c0.site_pos_m);
  const double far = env.mean_rsrp_dbm(0, c0.site_pos_m + 3000.0);
  EXPECT_GT(near, far + 15.0);
}

TEST(RadioEnv, CoSitedCellsShareShadowing) {
  // Co-sited cells' RSRP difference should be nearly constant along the
  // track (shared site shadowing), unlike cells on different sites.
  const auto env = small_env(5);
  // Find a site with two cells.
  int site = -1;
  std::size_t a = 0, b = 0;
  for (std::size_t i = 0; i + 1 < env.cells().size(); ++i) {
    if (env.cells()[i].id.base_station ==
        env.cells()[i + 1].id.base_station) {
      site = env.cells()[i].id.base_station;
      a = i;
      b = i + 1;
      break;
    }
  }
  ASSERT_GE(site, 0) << "no co-sited pair in deployment";
  rem::common::Summary diff;
  for (double x = 0; x < 5000.0; x += 50.0)
    diff.add(env.mean_rsrp_dbm(a, x) - env.mean_rsrp_dbm(b, x));
  // Difference = frequency term + small per-cell residual only.
  EXPECT_LT(diff.stddev(), 2.5);
}

TEST(RadioEnv, HoleSegmentKillsCoverage) {
  std::vector<rs::HoleSegment> holes = {{2000.0, 300.0}};
  const auto env = small_env(6, holes);
  EXPECT_TRUE(env.position_in_hole(2100.0));
  EXPECT_FALSE(env.position_in_hole(1900.0));
  EXPECT_LT(env.best_cell(2150.0, -120.0), 0);   // no usable cell inside
  EXPECT_GE(env.best_cell(5000.0, -120.0), 0);   // fine outside
}

TEST(RadioEnv, DdSnrIsMoreStableThanInstantRsrp) {
  const auto env = small_env(7);
  rem::common::Rng rng(8);
  rem::common::Summary rsrp, dd;
  for (int i = 0; i < 500; ++i) {
    rsrp.add(env.instant_rsrp_dbm(0, 500.0, rng));
    dd.add(env.dd_snr_db(0, 500.0, rng));
  }
  EXPECT_GT(rsrp.stddev(), 2.0 * dd.stddev());
}

TEST(RadioEnv, BestCellPicksNearest) {
  const auto env = small_env(9);
  // At a site's position, that site's primary cell should usually win.
  const auto& cells = env.cells();
  int hits = 0, trials = 0;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (cells[i].id.channel != 1825) continue;  // corridor layer only
    ++trials;
    const int best = env.best_cell(cells[i].site_pos_m, -120.0);
    ASSERT_GE(best, 0);
    if (env.cells()[static_cast<std::size_t>(best)].id.base_station ==
        cells[i].id.base_station)
      ++hits;
  }
  ASSERT_GT(trials, 3);
  EXPECT_GE(hits * 10, trials * 7);  // >= 70% despite shadowing
}

// ---------- TCP model ----------

TEST(Tcp, StallAtLeastOutage) {
  rs::TcpConfig cfg;
  for (double outage : {0.5, 1.0, 3.0, 8.0}) {
    const double stall = rs::tcp_stall_for_outage(outage, cfg, 0.3);
    EXPECT_GE(stall, outage);
  }
}

TEST(Tcp, BackoffAmplifiesLongOutages) {
  rs::TcpConfig cfg;
  // Fig. 9b: a ~2.3 s radio outage became a ~6.5 s stall via RTO backoff.
  const double stall = rs::tcp_stall_for_outage(2.3, cfg, 0.0);
  EXPECT_GT(stall, 2.3 * 1.3);
  // Short outages are barely amplified.
  const double short_stall = rs::tcp_stall_for_outage(0.3, cfg, 0.0);
  EXPECT_LT(short_stall, 0.9);
}

TEST(Tcp, StallMonotoneInOutage) {
  rs::TcpConfig cfg;
  double prev = 0.0;
  for (double outage = 0.2; outage < 20.0; outage += 0.2) {
    const double stall = rs::tcp_stall_for_outage(outage, cfg, 0.5);
    EXPECT_GE(stall, prev - 1e-9);
    prev = stall;
  }
}

TEST(Tcp, VectorApiValidatesSizes) {
  EXPECT_THROW(rs::tcp_stalls({1.0, 2.0}, {0.5}), std::invalid_argument);
  const auto stalls = rs::tcp_stalls({1.0, 2.0}, {0.1, 0.9});
  EXPECT_EQ(stalls.size(), 2u);
}

TEST(Tcp, RtoCappedAtMax) {
  rs::TcpConfig cfg;
  cfg.max_rto_s = 4.0;
  // Stall exceeds outage by at most max_rto (the last backoff interval).
  const double stall = rs::tcp_stall_for_outage(60.0, cfg, 0.0);
  EXPECT_LE(stall - 60.0, 4.0 + 1e-9);
}
