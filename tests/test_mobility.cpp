#include "mobility/conflict.hpp"
#include "mobility/events.hpp"
#include "mobility/measurement.hpp"
#include "mobility/policy.hpp"
#include "mobility/simplify.hpp"

#include <gtest/gtest.h>

namespace rm = rem::mobility;

// ---------- Events ----------

TEST(Events, Conditions) {
  rm::EventConfig a1{rm::EventType::kA1, -100, 0, 0, 0, 0};
  EXPECT_TRUE(rm::event_condition(a1, -90, 0));
  EXPECT_FALSE(rm::event_condition(a1, -110, 0));

  rm::EventConfig a2{rm::EventType::kA2, -100, 0, 0, 0, 0};
  EXPECT_TRUE(rm::event_condition(a2, -110, 0));
  EXPECT_FALSE(rm::event_condition(a2, -90, 0));

  rm::EventConfig a3{rm::EventType::kA3, 0, 0, 3.0, 0, 0};
  EXPECT_TRUE(rm::event_condition(a3, -100, -95));
  EXPECT_FALSE(rm::event_condition(a3, -100, -98));

  rm::EventConfig a4{rm::EventType::kA4, -103, 0, 0, 0, 0};
  EXPECT_TRUE(rm::event_condition(a4, -120, -100));
  EXPECT_FALSE(rm::event_condition(a4, -120, -105));

  rm::EventConfig a5{rm::EventType::kA5, -110, -108, 0, 0, 0};
  EXPECT_TRUE(rm::event_condition(a5, -115, -105));
  EXPECT_FALSE(rm::event_condition(a5, -105, -105));
  EXPECT_FALSE(rm::event_condition(a5, -115, -109));
}

TEST(Events, HysteresisShiftsThreshold) {
  rm::EventConfig a3{rm::EventType::kA3, 0, 0, 3.0, 1.0, 0};
  EXPECT_FALSE(rm::event_condition(a3, -100, -96.5));  // needs > -96
  EXPECT_TRUE(rm::event_condition(a3, -100, -95.5));
}

TEST(Events, TimeToTriggerGatesReport) {
  rm::EventConfig a3{rm::EventType::kA3, 0, 0, 3.0, 0, 0.160};
  rm::EventMonitor mon(a3);
  EXPECT_FALSE(mon.update(0.00, -100, -95));
  EXPECT_FALSE(mon.update(0.10, -100, -95));
  EXPECT_TRUE(mon.update(0.16, -100, -95));   // held long enough
  EXPECT_FALSE(mon.update(0.20, -100, -95));  // fires once
}

TEST(Events, ConditionLapseRearmsTrigger) {
  rm::EventConfig a3{rm::EventType::kA3, 0, 0, 3.0, 0, 0.1};
  rm::EventMonitor mon(a3);
  EXPECT_FALSE(mon.update(0.00, -100, -95));
  EXPECT_FALSE(mon.update(0.05, -100, -100));  // condition lapses
  EXPECT_FALSE(mon.update(0.06, -100, -95));   // re-enter, timer restarts
  EXPECT_FALSE(mon.update(0.10, -100, -95));
  EXPECT_TRUE(mon.update(0.16, -100, -95));
}

TEST(Events, ZeroTttFiresImmediately) {
  rm::EventConfig a3{rm::EventType::kA3, 0, 0, 3.0, 0, 0};
  rm::EventMonitor mon(a3);
  EXPECT_TRUE(mon.update(0.0, -100, -95));
}

// ---------- Policy ----------

namespace {
rm::CellPolicy legacy_multistage() {
  // Fig. 1b shape: stage 0 = intra A3 + A2 guard; stage 1 = inter A4/A5.
  rm::CellPolicy p;
  rm::PolicyRule intra;
  intra.stage = 0;
  intra.channel = rm::PolicyRule::kServingChannel;
  intra.event = {rm::EventType::kA3, 0, 0, 3.0, 0, 0.040};
  p.rules.push_back(intra);

  rm::PolicyRule guard;
  guard.stage = 0;
  guard.event = {rm::EventType::kA2, -110, 0, 0, 0, 0.040};
  guard.action = rm::PolicyAction::kReconfigure;
  guard.next_stage = 1;
  p.rules.push_back(guard);

  rm::PolicyRule inter;
  inter.stage = 1;
  inter.channel = 2452;
  inter.event = {rm::EventType::kA4, -108, 0, 0, 0, 0.640};
  p.rules.push_back(inter);

  rm::PolicyRule inter2;
  inter2.stage = 1;
  inter2.channel = 100;
  inter2.event = {rm::EventType::kA5, -110, -103, 0, 0, 0.640};
  p.rules.push_back(inter2);
  return p;
}
}  // namespace

TEST(Policy, StageIntrospection) {
  const auto p = legacy_multistage();
  EXPECT_EQ(p.num_stages(), 2);
  EXPECT_TRUE(p.is_multi_stage());
  EXPECT_EQ(p.rules_in_stage(0).size(), 2u);
  EXPECT_EQ(p.rules_in_stage(1).size(), 2u);
}

TEST(Policy, A3OffsetLookup) {
  const auto p = legacy_multistage();
  const auto off = p.a3_offset_for(1825, 1825);  // serving channel
  ASSERT_TRUE(off.has_value());
  EXPECT_DOUBLE_EQ(*off, 3.0);
  EXPECT_FALSE(p.a3_offset_for(2452, 1825).has_value());  // A4, not A3
}

// ---------- Simplification (Fig. 8) ----------

TEST(Simplify, CollapsesToSingleStageA3) {
  rm::SimplifyStats stats;
  const auto simplified = rm::simplify_policy(legacy_multistage(), 1.0,
                                              &stats);
  EXPECT_FALSE(simplified.is_multi_stage());
  EXPECT_EQ(simplified.num_stages(), 1);
  for (const auto& r : simplified.rules) {
    EXPECT_EQ(r.event.type, rm::EventType::kA3);
    EXPECT_EQ(r.action, rm::PolicyAction::kHandover);
    EXPECT_EQ(r.channel, rm::PolicyRule::kAnyChannel);
  }
  EXPECT_EQ(stats.kept_a3, 1);
  EXPECT_EQ(stats.a4_to_a3, 1);
  EXPECT_EQ(stats.a5_to_a3, 1);
  EXPECT_GE(stats.removed_a1_a2, 1);
  EXPECT_EQ(stats.removed_stages, 1);
}

TEST(Simplify, A5OffsetIsThresholdDifference) {
  rm::CellPolicy p;
  rm::PolicyRule r;
  r.event = {rm::EventType::kA5, -110, -104, 0, 0, 0};
  p.rules.push_back(r);
  const auto s = rm::simplify_policy(p);
  ASSERT_EQ(s.rules.size(), 1u);
  EXPECT_DOUBLE_EQ(s.rules[0].event.offset, 6.0);  // -104 - (-110)
}

TEST(Simplify, PreservesTttAndHysteresis) {
  rm::CellPolicy p;
  rm::PolicyRule r;
  r.event = {rm::EventType::kA3, 0, 0, 2.0, 1.5, 0.08};
  p.rules.push_back(r);
  const auto s = rm::simplify_policy(p);
  ASSERT_EQ(s.rules.size(), 1u);
  EXPECT_DOUBLE_EQ(s.rules[0].event.hysteresis, 1.5);
  EXPECT_DOUBLE_EQ(s.rules[0].event.time_to_trigger_s, 0.08);
}

// ---------- Conflicts ----------

namespace {
rm::PolicyCell a3_cell(int id, int channel, double offset) {
  rm::PolicyCell c;
  c.id = {id, id, channel};
  rm::PolicyRule r;
  r.event = {rm::EventType::kA3, 0, 0, offset, 0, 0};
  c.policy.rules.push_back(r);
  return c;
}
}  // namespace

TEST(Conflict, ProactiveA3PairConflicts) {
  // Fig. 4: both cells use Delta_A3 < 0 -> persistent loop region exists.
  std::vector<rm::PolicyCell> cells = {a3_cell(3, 10, -3.0),
                                       a3_cell(4, 10, -1.0)};
  const auto conflicts = rm::find_two_cell_conflicts(cells);
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(rm::conflict_type_label(conflicts[0].event_i,
                                    conflicts[0].event_j),
            "A3-A3");
  EXPECT_FALSE(conflicts[0].inter_frequency);
  // Witness must satisfy both triggers.
  const double r3 = conflicts[0].witness_ri;
  const double r4 = conflicts[0].witness_rj;
  EXPECT_GT(r4, r3 - 3.0);
  EXPECT_GT(r3, r4 - 1.0);
}

TEST(Conflict, NonNegativeOffsetsAreCompatible) {
  std::vector<rm::PolicyCell> cells = {a3_cell(1, 10, 3.0),
                                       a3_cell(2, 10, -2.0)};
  EXPECT_TRUE(rm::find_two_cell_conflicts(cells).empty());  // 3 - 2 >= 0
  cells[0] = a3_cell(1, 10, 2.0);
  EXPECT_TRUE(rm::find_two_cell_conflicts(cells).empty());  // boundary: sum 0
  cells[0] = a3_cell(1, 10, 1.5);
  EXPECT_FALSE(rm::find_two_cell_conflicts(cells).empty());  // sum -0.5 < 0
}

TEST(Conflict, LoadBalancingA4A5Conflict) {
  // Fig. 3: cell1 -> cell2 when RSRP2 > -110 (A4); cell2 -> cell1 when
  // RSRP2 < -95 and RSRP1 > -100 (A5). Overlap exists.
  rm::PolicyCell c1;
  c1.id = {1, 1, 10};
  rm::PolicyRule r1;
  r1.event = {rm::EventType::kA4, -110, 0, 0, 0, 0};
  r1.channel = 20;
  c1.policy.rules.push_back(r1);

  rm::PolicyCell c2;
  c2.id = {2, 2, 20};
  rm::PolicyRule r2;
  r2.event = {rm::EventType::kA5, -95, -100, 0, 0, 0};
  r2.channel = 10;
  c2.policy.rules.push_back(r2);

  const auto conflicts = rm::find_two_cell_conflicts({c1, c2});
  ASSERT_EQ(conflicts.size(), 1u);
  EXPECT_EQ(rm::conflict_type_label(conflicts[0].event_i,
                                    conflicts[0].event_j),
            "A4-A5");
  EXPECT_TRUE(conflicts[0].inter_frequency);
}

TEST(Conflict, DisjointA5RegionsDoNotConflict) {
  rm::PolicyCell c1;
  c1.id = {1, 1, 10};
  rm::PolicyRule r1;
  // c1 -> c2 only when c2 very strong.
  r1.event = {rm::EventType::kA4, -60, 0, 0, 0, 0};
  c1.policy.rules.push_back(r1);

  rm::PolicyCell c2;
  c2.id = {2, 2, 20};
  rm::PolicyRule r2;
  // c2 -> c1 only when c2 (serving) weak.
  r2.event = {rm::EventType::kA5, -120, -100, 0, 0, 0};
  c2.policy.rules.push_back(r2);

  EXPECT_TRUE(rm::find_two_cell_conflicts({c1, c2}).empty());
}

TEST(Conflict, HistogramLabels) {
  std::vector<rm::TwoCellConflict> cs(3);
  cs[0].event_i = rm::EventType::kA3;
  cs[0].event_j = rm::EventType::kA3;
  cs[1].event_i = rm::EventType::kA4;
  cs[1].event_j = rm::EventType::kA3;
  cs[2].event_i = rm::EventType::kA3;
  cs[2].event_j = rm::EventType::kA4;
  const auto h = rm::conflict_histogram(cs);
  EXPECT_EQ(h.at("A3-A3"), 1);
  EXPECT_EQ(h.at("A3-A4"), 2);
}

// ---------- Theorems 2 & 3 ----------

TEST(Theorem2, DetectsViolations) {
  // 2 cells with offsets summing negative.
  std::vector<std::vector<double>> d = {{0, -3}, {-1, 0}};
  const auto v = rm::check_theorem2(d);
  EXPECT_FALSE(v.empty());
}

TEST(Theorem2, SatisfiedMatrixPasses) {
  std::vector<std::vector<double>> d = {{0, 3, 2}, {1, 0, 0}, {2, 1, 0}};
  EXPECT_TRUE(rm::check_theorem2(d).empty());
}

TEST(Theorem2, TripleWithNegativePairCaught) {
  // d(0->1) = 2, d(1->2) = -3: sum -1 < 0 violates even though each pair
  // with its reverse is fine.
  std::vector<std::vector<double>> d = {{0, 2, 5}, {5, 0, -3}, {5, 4, 0}};
  const auto v = rm::check_theorem2(d);
  ASSERT_FALSE(v.empty());
  bool found = false;
  for (const auto& t : v)
    if (t.i == 0 && t.j == 1 && t.k == 2) found = true;
  EXPECT_TRUE(found);
}

TEST(Theorem2, RepairConverges) {
  std::vector<std::vector<double>> d = {{0, -5, -2}, {-4, 0, -1},
                                        {-3, -2, 0}};
  const auto r = rm::repair_theorem2(d);
  EXPECT_TRUE(rm::check_theorem2(r).empty());
  // Repair never lowers an offset.
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) EXPECT_GE(r[i][j], d[i][j]);
}

TEST(Theorem2, RepairPreservesCompatibleOffsets) {
  std::vector<std::vector<double>> d = {{0, 3}, {1, 0}};
  const auto r = rm::repair_theorem2(d);
  EXPECT_EQ(r, d);
}

TEST(Theorem2, CycleSatisfiability) {
  EXPECT_TRUE(rm::a3_cycle_satisfiable({-3, -1}));
  EXPECT_FALSE(rm::a3_cycle_satisfiable({3, -1}));
  EXPECT_FALSE(rm::a3_cycle_satisfiable({0, 0, 0}));
  EXPECT_TRUE(rm::a3_cycle_satisfiable({1, 1, -3}));
}

TEST(Theorem2, CoordinateOffsetsEliminatesConflicts) {
  std::vector<rm::PolicyCell> cells = {a3_cell(1, 10, -3.0),
                                       a3_cell(2, 10, -1.0),
                                       a3_cell(3, 20, -2.0)};
  for (auto& c : cells) c.policy = rm::simplify_policy(c.policy);
  rm::coordinate_offsets(cells);
  EXPECT_TRUE(rm::find_two_cell_conflicts(cells).empty());
}

// ---------- Measurement / feedback delay ----------

namespace {
std::vector<rm::MeasureTask> hsr_tasks() {
  // Two co-located cells per site across 3 sites, half inter-frequency.
  std::vector<rm::MeasureTask> tasks;
  for (int site = 0; site < 3; ++site) {
    tasks.push_back({{site * 2, site, 10}, true});
    tasks.push_back({{site * 2 + 1, site, 20}, false});
  }
  return tasks;
}
}  // namespace

TEST(Measurement, LegacySlowerThanRem) {
  rm::MeasurementConfig cfg;
  const auto tasks = hsr_tasks();
  const double legacy = rm::legacy_feedback_delay_s(tasks, cfg, 1);
  const double rem = rm::rem_feedback_delay_s(tasks, cfg);
  EXPECT_GT(legacy, rem * 2.0) << "legacy " << legacy << " rem " << rem;
}

TEST(Measurement, LegacyMatchesPaperScale) {
  // §3.1: ~800 ms average feedback generation on HSR.
  rm::MeasurementConfig cfg;
  const auto tasks = hsr_tasks();
  const double legacy = rm::legacy_feedback_delay_s(tasks, cfg, 1);
  EXPECT_GT(legacy, 0.5);
  EXPECT_LT(legacy, 1.5);
}

TEST(Measurement, RemMatchesPaperScale) {
  // Fig. 14a: ~242 ms average with cross-band estimation.
  rm::MeasurementConfig cfg;
  cfg.crossband_runtime_s = 0.050;
  const double rem = rm::rem_feedback_delay_s(hsr_tasks(), cfg);
  EXPECT_GT(rem, 0.1);
  EXPECT_LT(rem, 0.45);
}

TEST(Measurement, InterFrequencyDominatesLegacyDelay) {
  rm::MeasurementConfig cfg;
  std::vector<rm::MeasureTask> intra_only = {{{0, 0, 10}, true},
                                             {{1, 1, 10}, true}};
  std::vector<rm::MeasureTask> with_inter = intra_only;
  with_inter.push_back({{2, 2, 20}, false});
  EXPECT_GT(rm::legacy_feedback_delay_s(with_inter, cfg),
            rm::legacy_feedback_delay_s(intra_only, cfg) + 0.5);
}

TEST(Measurement, GapOverheadMatchesSchedule) {
  rm::MeasurementConfig cfg;
  EXPECT_NEAR(rm::gap_spectrum_overhead(cfg, true), 0.15, 1e-12);
  EXPECT_DOUBLE_EQ(rm::gap_spectrum_overhead(cfg, false), 0.0);
}

TEST(Measurement, NoTasksStillHasReportLatency) {
  rm::MeasurementConfig cfg;
  EXPECT_GE(rm::legacy_feedback_delay_s({}, cfg), cfg.report_latency_s);
}

// ---------- n-cell loop enumeration ----------

TEST(A3Loops, FindsTwoCellLoop) {
  std::vector<rm::PolicyCell> cells = {a3_cell(0, 10, -3.0),
                                       a3_cell(1, 10, -1.0)};
  const auto loops = rm::find_a3_loops(cells, 4);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].cells, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(loops[0].offset_sum, -4.0);
}

TEST(A3Loops, FindsThreeCellLoopWithoutTwoCellOnes) {
  // Pairwise sums are fine (1 + 1 >= 0) but the triangle sums negative:
  // offsets 1, 1, -3 around the cycle.
  std::vector<rm::PolicyCell> cells = {a3_cell(0, 10, 1.0),
                                       a3_cell(1, 10, 1.0),
                                       a3_cell(2, 10, -3.0)};
  const auto loops = rm::find_a3_loops(cells, 4);
  // No 2-cell loop: all pairwise sums >= -2... check: (1,1)=2, (1,-3)=-2!
  // Cells 1-2 and 0-2 pairs each sum to -2 < 0, so 2-cell loops exist
  // alongside the 3-cell one. Verify all reported loops really sum < 0
  // and at least one 3-cell loop is present.
  bool has_triangle = false;
  for (const auto& l : loops) {
    EXPECT_LT(l.offset_sum, 0.0);
    if (l.cells.size() == 3) has_triangle = true;
  }
  EXPECT_TRUE(has_triangle);
}

TEST(A3Loops, NoLoopsWhenTheorem2Holds) {
  std::vector<rm::PolicyCell> cells = {a3_cell(0, 10, 2.0),
                                       a3_cell(1, 10, 0.0),
                                       a3_cell(2, 10, 1.0),
                                       a3_cell(3, 10, 3.0)};
  EXPECT_TRUE(rm::find_a3_loops(cells, 4).empty());
}

TEST(A3Loops, RespectsPairFilter) {
  std::vector<rm::PolicyCell> cells = {a3_cell(0, 10, -3.0),
                                       a3_cell(1, 10, -1.0)};
  const auto none = rm::find_a3_loops(
      cells, 4, [](std::size_t, std::size_t) { return false; });
  EXPECT_TRUE(none.empty());
}

TEST(A3Loops, CrossChannelEdgesNeedMatchingRules) {
  // A3 rules on the serving channel only: no edges across channels.
  std::vector<rm::PolicyCell> cells = {a3_cell(0, 10, -3.0),
                                       a3_cell(1, 20, -3.0)};
  for (auto& c : cells)
    c.policy.rules[0].channel = rm::PolicyRule::kServingChannel;
  EXPECT_TRUE(rm::find_a3_loops(cells, 4).empty());
}
