// Golden-corpus generator: runs every corpus case and (re)writes its
// digest JSON. Driven by scripts/update_goldens.sh after an intentional
// behavior change; the diff of tests/golden/*.json then documents exactly
// which statistics moved.
//
// Usage: golden_gen [output_dir]   (default: the committed tests/golden)
#include "golden_runner.hpp"

#include "common/thread_pool.hpp"

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : REM_GOLDEN_DIR;
  const auto jobs = rem::testkit::golden_jobs();
  std::vector<rem::testkit::TraceDigest> digests(jobs.size());
  std::vector<std::string> errors(jobs.size());
  rem::common::parallel_for(
      jobs.size(), rem::bench::bench_threads(), [&](std::size_t i) {
        try {
          digests[i] = jobs[i].run();
        } catch (const std::exception& e) {
          errors[i] = e.what();
        }
      });
  int failures = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (!errors[i].empty()) {
      std::fprintf(stderr, "FAIL %s: %s\n", jobs[i].name.c_str(),
                   errors[i].c_str());
      ++failures;
      continue;
    }
    const std::string path = out_dir + "/" + jobs[i].name + ".json";
    try {
      rem::testkit::write_digest_json_file(digests[i], path);
      std::printf("wrote %s\n", path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FAIL %s: %s\n", path.c_str(), e.what());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
