#include "channel/multipath.hpp"
#include "common/rng.hpp"
#include "dsp/matrix.hpp"
#include "phy/ofdm.hpp"
#include "phy/otfs.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rp = rem::phy;
using rem::dsp::Matrix;
using rem::dsp::cd;

namespace {
Matrix random_grid(std::size_t m, std::size_t n, rem::common::Rng& rng) {
  Matrix g(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.complex_gaussian(1.0);
  return g;
}
}  // namespace

TEST(Numerology, LteDefaults) {
  const auto num = rp::Numerology::lte(12, 14);
  EXPECT_EQ(num.num_subcarriers, 12u);
  EXPECT_EQ(num.num_symbols, 14u);
  EXPECT_DOUBLE_EQ(num.sample_rate_hz(), 180e3);
  EXPECT_NEAR(num.useful_symbol_s() * 1e6, 66.67, 0.01);
  EXPECT_GT(num.cp_len, 0u);
  EXPECT_EQ(num.total_samples(), (12 + num.cp_len) * 14);
}

TEST(Numerology, DelayDopplerResolution) {
  const auto num = rp::Numerology::lte(128, 16);
  EXPECT_NEAR(num.delay_res_s(), 1.0 / (128.0 * 15e3), 1e-15);
  EXPECT_NEAR(num.doppler_res_hz(),
              1.0 / (16.0 * num.symbol_duration_s()), 1e-9);
}

class ModemRoundTrip
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(ModemRoundTrip, OfdmBackToBack) {
  const auto [m, n] = GetParam();
  rem::common::Rng rng(m + n);
  const auto num = rp::Numerology::lte(m, n);
  rp::OfdmModem modem(num);
  const Matrix grid = random_grid(m, n, rng);
  const Matrix out = modem.demodulate(modem.modulate(grid));
  EXPECT_LT(Matrix::max_abs_diff(grid, out), 1e-9);
}

TEST_P(ModemRoundTrip, OtfsBackToBack) {
  const auto [m, n] = GetParam();
  rem::common::Rng rng(m * 3 + n);
  const auto num = rp::Numerology::lte(m, n);
  rp::OtfsModem modem(num);
  const Matrix grid = random_grid(m, n, rng);
  const Matrix out = modem.demodulate(modem.modulate(grid));
  EXPECT_LT(Matrix::max_abs_diff(grid, out), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    GridSizes, ModemRoundTrip,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(12, 14),
                      std::make_pair<std::size_t, std::size_t>(64, 16),
                      std::make_pair<std::size_t, std::size_t>(60, 7),
                      std::make_pair<std::size_t, std::size_t>(128, 28)));

TEST(Sfft, RoundTrip) {
  rem::common::Rng rng(5);
  const Matrix dd = random_grid(12, 14, rng);
  const Matrix back = rp::isfft(rp::sfft(dd));
  EXPECT_LT(Matrix::max_abs_diff(dd, back), 1e-10);
}

TEST(Sfft, Unitary) {
  rem::common::Rng rng(6);
  const Matrix dd = random_grid(16, 8, rng);
  const Matrix tf = rp::sfft(dd);
  EXPECT_NEAR(tf.frobenius_norm(), dd.frobenius_norm(), 1e-9);
}

TEST(Sfft, ImpulseSpreadsUniformly) {
  // A DD impulse maps to constant-magnitude TF samples — the whole point
  // of OTFS (full time-frequency diversity for every DD symbol).
  Matrix dd(8, 8);
  dd(2, 3) = cd(1, 0);
  const Matrix tf = rp::sfft(dd);
  const double expected = 1.0 / 8.0;  // 1/sqrt(MN)
  for (std::size_t i = 0; i < 8; ++i)
    for (std::size_t j = 0; j < 8; ++j)
      EXPECT_NEAR(std::abs(tf(i, j)), expected, 1e-12);
}

TEST(Ofdm, ModulatePreservesEnergyModuloCp) {
  // With unitary transforms the only energy added is the CP copy.
  rem::common::Rng rng(7);
  const auto num = rp::Numerology::lte(32, 4);
  rp::OfdmModem modem(num);
  const Matrix grid = random_grid(32, 4, rng);
  const auto time = modem.modulate(grid);
  double grid_e = 0, time_e = 0;
  for (const auto& x : grid.data()) grid_e += std::norm(x);
  for (const auto& x : time) time_e += std::norm(x);
  // time energy = grid energy * (1 + cp_len/M) approximately (CP repeats a
  // random chunk; exact expectation ratio, generous tolerance).
  const double ratio = time_e / grid_e;
  EXPECT_GT(ratio, 1.0);
  EXPECT_LT(ratio, 1.0 + 2.0 * static_cast<double>(num.cp_len) / 32.0);
}

TEST(Ofdm, ShapeErrorsThrow) {
  const auto num = rp::Numerology::lte(12, 14);
  rp::OfdmModem modem(num);
  EXPECT_THROW(modem.modulate(Matrix(10, 14)), std::invalid_argument);
  EXPECT_THROW(modem.demodulate(rem::dsp::CVec(17)), std::invalid_argument);
}

TEST(OfdmChannel, FlatChannelEqualsScaledGrid) {
  // Single path, zero delay/Doppler, gain g: every RE scaled by g.
  rem::common::Rng rng(8);
  const auto num = rp::Numerology::lte(16, 4);
  rp::OfdmModem modem(num);
  const Matrix grid = random_grid(16, 4, rng);
  rem::channel::Path p;
  p.gain = cd(0.6, -0.2);
  rem::channel::MultipathChannel ch({p});
  const auto rx = ch.apply_to_signal(modem.modulate(grid),
                                     num.sample_rate_hz());
  const Matrix out = modem.demodulate(rx);
  for (std::size_t i = 0; i < 16; ++i)
    for (std::size_t j = 0; j < 4; ++j)
      EXPECT_LT(std::abs(out(i, j) - grid(i, j) * p.gain), 1e-9);
}

TEST(OfdmChannel, DelayedPathIsPerSubcarrierPhase) {
  // Delay within CP: per-subcarrier phase ramp, no ISI.
  rem::common::Rng rng(9);
  const auto num = rp::Numerology::lte(64, 2);
  rp::OfdmModem modem(num);
  const Matrix grid = random_grid(64, 2, rng);
  rem::channel::Path p;
  p.gain = cd(1, 0);
  const double fs = num.sample_rate_hz();
  p.delay_s = 2.0 / fs;  // 2 samples, within CP (cp_len >= 5 for M=64)
  ASSERT_GE(num.cp_len, 3u);
  rem::channel::MultipathChannel ch({p});
  const auto rx = ch.apply_to_signal(modem.modulate(grid), fs);
  const Matrix out = modem.demodulate(rx);
  // Expected phase on subcarrier k: the channel uses the unwrapped
  // convention (bin k at +k df), matching the delay-Doppler model.
  for (std::size_t k = 0; k < 64; ++k) {
    const double bin = static_cast<double>(k);
    const double ang = -2.0 * M_PI * bin / 64.0 * 2.0;  // 2-sample delay
    const cd expect = cd(std::cos(ang), std::sin(ang));
    EXPECT_LT(std::abs(out(k, 1) - grid(k, 1) * expect), 1e-6)
        << "subcarrier " << k;
  }
}
