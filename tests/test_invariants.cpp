// rem::testkit correctness tooling: the InvariantChecker must stay silent
// on well-formed runs (synthetic and end-to-end, fault-free and chaotic)
// and must flag every class of malformed stream it claims to check. Also
// covers the REM_TEST_SEEDS / REM_CHECK_INVARIANTS environment plumbing.
#include "testkit/invariants.hpp"
#include "testkit/seeds.hpp"

#include "scenario_runner.hpp"
#include "sim/fleet.hpp"
#include "testkit/golden.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>

namespace {

using rem::sim::EventKind;
using rem::sim::SignalingEvent;
using rem::sim::SimStats;
using rem::sim::TickView;
using rem::testkit::CheckerConfig;
using rem::testkit::InvariantChecker;

CheckerConfig small_config() {
  CheckerConfig cfg;
  cfg.sim.duration_s = 10.0;
  cfg.num_cells = 4;
  // These synthetic event streams model the direct command path; the
  // prep-handshake rules only apply when the backhaul transport is on.
  cfg.sim.backhaul.enabled = false;
  cfg.faults_expected = false;
  return cfg;
}

SignalingEvent ev(double t, EventKind k, int srv, int tgt,
                  double snr = 0.0) {
  return SignalingEvent{t, k, srv, tgt, snr};
}

TickView idle_tick(double t, int serving) {
  TickView v;
  v.t_s = t;
  v.serving = serving;
  v.serving_snr_db = 3.0;
  return v;
}

/// One complete, legal handover: trigger -> report -> command -> complete.
void feed_clean_handover(InvariantChecker& c, double t0, int from, int to) {
  c.on_event(ev(t0, EventKind::kMeasurementTriggered, from, to));
  auto v = idle_tick(t0, from);
  v.report_pending = true;
  c.on_tick(v);
  c.on_event(ev(t0 + 0.01, EventKind::kReportDelivered, from, to));
  v = idle_tick(t0 + 0.01, from);
  v.command_pending = true;
  c.on_tick(v);
  c.on_event(ev(t0 + 0.02, EventKind::kHoCommandDelivered, from, to));
  v = idle_tick(t0 + 0.02, from);
  v.executing = true;
  c.on_tick(v);
  c.on_event(ev(t0 + 0.07, EventKind::kHandoverComplete, from, to));
  c.on_tick(idle_tick(t0 + 0.07, to));
}

TEST(InvariantChecker, CleanHandoverSequenceIsViolationFree) {
  InvariantChecker c(small_config());
  c.on_tick(idle_tick(0.0, 0));
  feed_clean_handover(c, 1.0, 0, 1);
  SimStats stats;
  stats.handovers = 1;
  stats.successful_handovers = 1;
  c.on_run_end(stats);
  EXPECT_EQ(c.violation_count(), 0) << c.report();
  EXPECT_EQ(stats.invariant_violations, 0);
  EXPECT_TRUE(c.report().empty());
}

TEST(InvariantChecker, FlagsBackwardEventTimestamps) {
  InvariantChecker c(small_config());
  c.on_event(ev(1.0, EventKind::kMeasurementTriggered, 0, 1));
  c.on_event(ev(0.5, EventKind::kMeasurementTriggered, 0, 1));
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("backwards"), std::string::npos);
}

TEST(InvariantChecker, FlagsCompletionWithoutCommand) {
  InvariantChecker c(small_config());
  c.on_event(ev(1.0, EventKind::kHandoverComplete, 0, 1));
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("without a delivered command"),
            std::string::npos);
}

TEST(InvariantChecker, FlagsOverlappingExecutions) {
  InvariantChecker c(small_config());
  c.on_event(ev(1.0, EventKind::kHoCommandDelivered, 0, 1));
  c.on_event(ev(1.1, EventKind::kHoCommandDelivered, 0, 2));
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("overlapping T304"), std::string::npos);
}

TEST(InvariantChecker, FlagsRlfWithoutRunningT310) {
  InvariantChecker c(small_config());
  c.on_event(ev(2.0, EventKind::kRadioLinkFailure, 0, -1));
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("without a running T310"), std::string::npos);
}

TEST(InvariantChecker, AcceptsRlfAfterFullT310Budget) {
  auto cfg = small_config();
  InvariantChecker c(cfg);
  // Arm T310 legitimately: N310 out-of-sync ticks, then let it run.
  double t = 0.0;
  for (int i = 1; i <= cfg.sim.n310; ++i) {
    t += 0.01;
    auto v = idle_tick(t, 0);
    v.serving_snr_db = -20.0;
    v.oos_count = i;
    v.t310_running = i == cfg.sim.n310;
    c.on_tick(v);
  }
  const double armed = t;
  while (t - armed < cfg.sim.t310_s) {
    t += 0.01;
    auto v = idle_tick(t, 0);
    v.serving_snr_db = -20.0;
    v.oos_count = cfg.sim.n310;
    v.t310_running = true;
    c.on_tick(v);
  }
  c.on_event(ev(t + 0.01, EventKind::kRadioLinkFailure, 0, -1));
  auto v = idle_tick(t + 0.01, 0);
  v.in_outage = true;
  v.serving_snr_db = -20.0;
  c.on_tick(v);
  EXPECT_EQ(c.violation_count(), 0) << c.report();
}

TEST(InvariantChecker, FlagsPrematureReestablishment) {
  auto cfg = small_config();
  InvariantChecker c(cfg);
  c.on_event(ev(1.0, EventKind::kHoCommandDelivered, 0, 1));
  c.on_event(ev(1.05, EventKind::kT304Expiry, 0, 1));
  // T304 fallback floor is t304_reestablish_s (0.3 s); 0.05 s is too fast.
  c.on_event(ev(1.10, EventKind::kReestablished, 1, -1));
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("search-time floor"), std::string::npos);
}

TEST(InvariantChecker, FlagsEarlyT310Arming) {
  auto cfg = small_config();
  InvariantChecker c(cfg);
  c.on_tick(idle_tick(0.0, 0));
  auto v = idle_tick(0.01, 0);
  v.t310_running = true;
  v.oos_count = cfg.sim.n310 - 2;  // armed before N310 out-of-syncs
  c.on_tick(v);
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("T310 armed after only"), std::string::npos);
}

TEST(InvariantChecker, FlagsStaleEstimatesWithFreshPilots) {
  InvariantChecker c(small_config());
  auto v = idle_tick(0.0, 0);
  v.pilot_fault = false;
  v.estimate_age_s = 0.5;
  c.on_tick(v);
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("fresh pilots"), std::string::npos);
}

TEST(InvariantChecker, FlagsDegradedEntryOnManagerWithoutFallback) {
  auto cfg = small_config();
  cfg.expect_no_degraded = true;
  cfg.faults_expected = true;  // isolate: faults alone are legal here
  InvariantChecker c(cfg);
  c.on_event(ev(1.0, EventKind::kDegradedEnter, 0, -1));
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("no fallback"), std::string::npos);
}

TEST(InvariantChecker, FlagsFaultWindowOnFaultFreeRun) {
  InvariantChecker c(small_config());
  c.on_event(ev(1.0, EventKind::kFaultStart, 0, 1));
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("fault-free run"), std::string::npos);
}

TEST(InvariantChecker, FlagsStatsDisagreeingWithEventStream) {
  InvariantChecker c(small_config());
  c.on_tick(idle_tick(0.0, 0));
  SimStats stats;
  stats.handovers = 1;  // no command was ever delivered
  c.on_run_end(stats);
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_EQ(stats.invariant_violations, c.violation_count());
  EXPECT_NE(c.report().find("delivered commands"), std::string::npos);
}

TEST(InvariantChecker, FlagsLoopAccountingMismatch) {
  InvariantChecker c(small_config());
  feed_clean_handover(c, 1.0, 0, 1);
  SimStats stats;
  stats.handovers = 1;
  stats.successful_handovers = 1;
  stats.loop_handovers = 3;  // the event stream shows none
  c.on_run_end(stats);
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("recount"), std::string::npos);
}

TEST(InvariantChecker, CountsPersistentPingPongEpisodes) {
  auto cfg = small_config();
  cfg.expect_loop_free = true;
  InvariantChecker c(cfg);
  // 0 -> 1 -> 0 -> 1 -> 0 within the loop window. The initial serving
  // cell is never in the recently-served window (mirroring the
  // simulator), so the third and fourth completions are the loop
  // handovers — two in a row, one persistent episode.
  feed_clean_handover(c, 1.0, 0, 1);
  feed_clean_handover(c, 2.0, 1, 0);
  feed_clean_handover(c, 3.0, 0, 1);
  feed_clean_handover(c, 4.0, 1, 0);
  EXPECT_EQ(c.observed_loop_handovers(), 2);
  EXPECT_EQ(c.observed_loop_episodes(), 1);
  EXPECT_EQ(c.persistent_loop_episodes(), 1);
  SimStats stats;
  stats.handovers = 4;
  stats.successful_handovers = 4;
  stats.loop_handovers = 2;
  stats.loop_episodes = 1;
  c.on_run_end(stats);
  EXPECT_GT(c.violation_count(), 0);
  EXPECT_NE(c.report().find("Theorem-2"), std::string::npos);
}

TEST(InvariantChecker, SingleLoopHandoverIsNotPersistent) {
  auto cfg = small_config();
  cfg.expect_loop_free = true;
  InvariantChecker c(cfg);
  feed_clean_handover(c, 1.0, 0, 1);
  feed_clean_handover(c, 2.0, 1, 2);
  feed_clean_handover(c, 3.0, 2, 1);   // one bounce back...
  feed_clean_handover(c, 4.0, 1, 3);   // ...then progress: episode over
  EXPECT_EQ(c.observed_loop_handovers(), 1);
  EXPECT_EQ(c.observed_loop_episodes(), 1);
  EXPECT_EQ(c.persistent_loop_episodes(), 0);
  SimStats stats;
  stats.handovers = 4;
  stats.successful_handovers = 4;
  stats.loop_handovers = 1;
  stats.loop_episodes = 1;
  c.on_run_end(stats);
  EXPECT_EQ(c.violation_count(), 0) << c.report();
}

TEST(InvariantChecker, ViolationMessagesCarryTimeAndStateContext) {
  InvariantChecker c(small_config());
  c.on_event(ev(2.5, EventKind::kHandoverComplete, 0, 1));
  ASSERT_FALSE(c.violations().empty());
  const std::string& msg = c.violations().front();
  EXPECT_NE(msg.find("[t=2.500s]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("state:"), std::string::npos) << msg;
}

// ---- End-to-end: the checker rides every scenario-runner simulation ----

TEST(InvariantCheckerEndToEnd, FaultFreeRunsAreViolationFree) {
  rem::phy::LogisticBlerModel bler;
  for (const auto route : {rem::trace::Route::kLowMobilityLA,
                           rem::trace::Route::kBeijingShanghai}) {
    const double speed =
        route == rem::trace::Route::kLowMobilityLA ? 60.0 : 330.0;
    // run_seed throws std::logic_error on any violation.
    const auto r = rem::bench::run_seed(route, speed, 60.0, 42,
                                        /*run_rem=*/true, bler);
    EXPECT_EQ(r.legacy.invariant_violations, 0);
    EXPECT_EQ(r.rem.invariant_violations, 0);
  }
}

TEST(InvariantCheckerEndToEnd, MixedFaultRunsAreViolationFree) {
  rem::phy::LogisticBlerModel bler;
  rem::bench::SeedRunOptions opts;
  opts.faults = rem::testkit::golden_fault_preset("mixed", 60.0);
  const auto r =
      rem::bench::run_seed(rem::trace::Route::kBeijingTaiyuan, 250.0, 60.0,
                           7, /*run_rem=*/true, bler, opts);
  EXPECT_EQ(r.legacy.invariant_violations, 0);
  EXPECT_EQ(r.rem.invariant_violations, 0);
}

TEST(InvariantCheckerEndToEnd, CheckerDoesNotChangeResults) {
  rem::phy::LogisticBlerModel bler;
  rem::bench::SeedRunOptions checked;
  rem::bench::SeedRunOptions unchecked;
  unchecked.check_invariants = false;
  const auto route = rem::trace::Route::kBeijingShanghai;
  const auto a = rem::bench::run_seed(route, 300.0, 60.0, 5, true, bler,
                                      checked);
  const auto b = rem::bench::run_seed(route, 300.0, 60.0, 5, true, bler,
                                      unchecked);
  // Bit-identity on purpose: the observer draws no randomness.
  EXPECT_EQ(a.legacy.handovers, b.legacy.handovers);
  EXPECT_EQ(a.legacy.failures, b.legacy.failures);
  EXPECT_EQ(a.legacy.outage_durations_s, b.legacy.outage_durations_s);
  EXPECT_EQ(a.legacy.mean_throughput_bps, b.legacy.mean_throughput_bps);
  EXPECT_EQ(a.rem.handovers, b.rem.handovers);
  EXPECT_EQ(a.rem.failures, b.rem.failures);
  EXPECT_EQ(a.rem.outage_durations_s, b.rem.outage_durations_s);
  EXPECT_EQ(a.rem.mean_throughput_bps, b.rem.mean_throughput_bps);
}

// ---- Environment plumbing (REM_TEST_SEEDS / REM_CHECK_INVARIANTS) ----

class SeedEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("REM_TEST_SEEDS");
    ::unsetenv("REM_CHECK_INVARIANTS");
  }
};

TEST_F(SeedEnvTest, DefaultsPassThroughWhenUnset) {
  ::unsetenv("REM_TEST_SEEDS");
  EXPECT_EQ(rem::testkit::property_seeds({1, 2, 3}),
            (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(SeedEnvTest, BareCountWidensFromFirstDefault) {
  ::setenv("REM_TEST_SEEDS", "5", 1);
  EXPECT_EQ(rem::testkit::property_seeds({10, 11}),
            (std::vector<std::uint64_t>{10, 11, 12, 13, 14}));
}

TEST_F(SeedEnvTest, CommaListIsTakenVerbatim) {
  ::setenv("REM_TEST_SEEDS", "4,99,1000", 1);
  EXPECT_EQ(rem::testkit::property_seeds({1}),
            (std::vector<std::uint64_t>{4, 99, 1000}));
}

TEST_F(SeedEnvTest, MalformedSpecFailsLoudly) {
  ::setenv("REM_TEST_SEEDS", "3,abc", 1);
  EXPECT_THROW(rem::testkit::property_seeds({1}), std::invalid_argument);
  ::setenv("REM_TEST_SEEDS", "0", 1);
  EXPECT_THROW(rem::testkit::property_seeds({1}), std::invalid_argument);
  ::setenv("REM_TEST_SEEDS", "1,", 1);
  EXPECT_THROW(rem::testkit::property_seeds({1}), std::invalid_argument);
}

TEST_F(SeedEnvTest, InvariantKillSwitch) {
  ::unsetenv("REM_CHECK_INVARIANTS");
  EXPECT_TRUE(rem::testkit::invariants_enabled());
  ::setenv("REM_CHECK_INVARIANTS", "0", 1);
  EXPECT_FALSE(rem::testkit::invariants_enabled());
  ::setenv("REM_CHECK_INVARIANTS", "off", 1);
  EXPECT_FALSE(rem::testkit::invariants_enabled());
  ::setenv("REM_CHECK_INVARIANTS", "1", 1);
  EXPECT_TRUE(rem::testkit::invariants_enabled());
}

// ---- Fleet invariants (testkit::fleet_invariant_report) ----

/// Minimal well-formed two-UE fleet result: per-UE logs time-sorted and
/// ue-tagged, aggregate = documented fold.
rem::sim::FleetResult small_fleet() {
  rem::sim::FleetResult r;
  r.per_ue.resize(2);
  for (int k = 0; k < 2; ++k) {
    auto& s = r.per_ue[static_cast<std::size_t>(k)];
    s.sim_time_s = 10.0;
    s.handovers = 3 + k;
    s.successful_handovers = 2 + k;
    s.t304_expiries = 1;
    s.failures = k;
    s.bs_crashes = 2;
    s.events.push_back({1.0 + k, EventKind::kHandoverComplete, 0, 1, -3.0, k});
    s.events.push_back({5.0, EventKind::kRadioLinkFailure, 1, -1, -9.0, k});
  }
  // UE 1's t=5.0 event ties UE 0's; keep UE order within the tie.
  std::sort(r.per_ue[1].events.begin(), r.per_ue[1].events.end(),
            [](const SignalingEvent& a, const SignalingEvent& b) {
              return a.t_s < b.t_s;
            });
  r.aggregate = rem::sim::merge_fleet_stats(r.per_ue);
  return r;
}

TEST(FleetInvariants, CleanResultProducesEmptyReport) {
  EXPECT_TRUE(rem::testkit::fleet_invariant_report(small_fleet()).empty());
}

TEST(FleetInvariants, EmptyResultIsFlagged) {
  EXPECT_FALSE(
      rem::testkit::fleet_invariant_report(rem::sim::FleetResult{}).empty());
}

TEST(FleetInvariants, PerUeConservationViolationIsFlagged) {
  auto r = small_fleet();
  // Successes + T304 expiries must never exceed attempts, shared-BS
  // contention or not.
  r.per_ue[0].successful_handovers = r.per_ue[0].handovers + 1;
  const auto report = rem::testkit::fleet_invariant_report(r);
  ASSERT_FALSE(report.empty());
  EXPECT_NE(report[0].find("exceed attempts"), std::string::npos);
}

TEST(FleetInvariants, AggregateSumDriftIsFlagged) {
  auto r = small_fleet();
  r.aggregate.handovers += 1;
  bool found = false;
  for (const auto& line : rem::testkit::fleet_invariant_report(r))
    found = found || line.find("aggregate.handovers") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(FleetInvariants, CrashWindowDisagreementIsFlagged) {
  auto r = small_fleet();
  // Crash windows are global: every UE must report the same count.
  r.per_ue[1].bs_crashes += 1;
  bool found = false;
  for (const auto& line : rem::testkit::fleet_invariant_report(r))
    found = found || line.find("bs_crashes disagree") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(FleetInvariants, CrossUeTimestampRegressionIsFlagged) {
  auto r = small_fleet();
  // Swap the middle events (UE 1's t=2.0 behind UE 0's t=5.0): each UE's
  // own order survives, but the merged timeline now runs backwards.
  ASSERT_EQ(r.aggregate.events.size(), 4u);
  std::swap(r.aggregate.events[1], r.aggregate.events[2]);
  bool found = false;
  for (const auto& line : rem::testkit::fleet_invariant_report(r))
    found = found || line.find("regresses") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(FleetInvariants, WrongUeTagIsFlagged) {
  auto r = small_fleet();
  r.per_ue[1].events[0].ue = 0;
  bool found = false;
  for (const auto& line : rem::testkit::fleet_invariant_report(r))
    found = found || line.find("tagged ue=") != std::string::npos;
  EXPECT_TRUE(found);
}

TEST(FleetInvariants, PerUeOrderLossInMergedLogIsFlagged) {
  auto r = small_fleet();
  // Same timestamps, but UE 0's entry mutates: the merged log no longer
  // reproduces that UE's own log in order.
  ASSERT_EQ(r.aggregate.events[0].ue, 0);
  r.aggregate.events[0].serving_snr_db += 1.0;
  bool found = false;
  for (const auto& line : rem::testkit::fleet_invariant_report(r))
    found = found || line.find("order not preserved") != std::string::npos;
  EXPECT_TRUE(found);
}

}  // namespace
