// Fleet-scale verification layer (label: fleet): the multi-UE engine is
// pinned against the single-UE simulator bit-for-bit, across drivers, and
// across thread counts.
//
//  - a fleet of one reproduces a single-UE Simulator::run exactly (same
//    RNG derivation, same stats, same event log) for both managers;
//  - the tick-loop and event-queue drivers are bit-identical on the same
//    single-UE scenario, faults and all;
//  - a batch of fleet seeds merged in seed order is bit-identical at 1, 2,
//    and 8 worker threads;
//  - per-UE stats fold into the fleet aggregate under the documented
//    rules, and fleet_invariant_report stays clean on real runs;
//  - a 100-UE fleet completes under one InvariantChecker per UE.
#include "fleet_runner.hpp"

#include "common/thread_pool.hpp"
#include "testkit/golden.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

namespace {

using rem::bench::FleetRunOptions;
using rem::bench::run_fleet_seed;

/// Exact equality over every SimStats field; the event log compares via
/// size + the golden corpus's bit-exact FNV hash.
void expect_stats_eq(const rem::sim::SimStats& a, const rem::sim::SimStats& b,
                     bool compare_violations = true) {
#define REM_EQ(field) EXPECT_EQ(a.field, b.field) << #field
  REM_EQ(sim_time_s);
  REM_EQ(handovers);
  REM_EQ(successful_handovers);
  REM_EQ(failures);
  REM_EQ(failures_by_cause);
  REM_EQ(loop_handovers);
  REM_EQ(loop_episodes);
  REM_EQ(intra_freq_loop_episodes);
  REM_EQ(conflict_loop_episodes);
  REM_EQ(conflict_loop_handovers);
  REM_EQ(intra_freq_conflict_loops);
  REM_EQ(avg_handover_interval_s);
  REM_EQ(outage_durations_s);
  REM_EQ(feedback_delays_s);
  REM_EQ(report_retransmits);
  REM_EQ(t304_expiries);
  REM_EQ(t304_fallback_success);
  REM_EQ(duplicate_commands);
  REM_EQ(degraded_enters);
  REM_EQ(degraded_time_s);
  REM_EQ(prep_requests);
  REM_EQ(prep_retries);
  REM_EQ(prep_acks);
  REM_EQ(prep_rejects);
  REM_EQ(prep_fallbacks);
  REM_EQ(prep_failures);
  REM_EQ(prep_rtt_sum_s);
  REM_EQ(context_fetch_failures);
  REM_EQ(backhaul_sent);
  REM_EQ(backhaul_delivered);
  REM_EQ(backhaul_dropped_loss);
  REM_EQ(backhaul_dropped_partition);
  REM_EQ(backhaul_dropped_queue);
  REM_EQ(backhaul_dropped_crash);
  REM_EQ(backhaul_duplicated);
  REM_EQ(backhaul_reordered);
  REM_EQ(backhaul_latency_sum_s);
  REM_EQ(bs_jobs_submitted);
  REM_EQ(bs_jobs_served);
  REM_EQ(bs_jobs_queued);
  REM_EQ(bs_queue_shed);
  REM_EQ(bs_jobs_flushed);
  REM_EQ(bs_jobs_inflight_end);
  REM_EQ(bs_queue_wait_sum_s);
  REM_EQ(admission_rejects);
  REM_EQ(admission_backoff_retries);
  REM_EQ(bs_crashes);
  REM_EQ(bs_crash_dropped_msgs);
  REM_EQ(stale_context_responses);
  REM_EQ(mean_throughput_bps);
  REM_EQ(downtime_fraction);
  REM_EQ(pre_failure_snrs_db);
#undef REM_EQ
  if (compare_violations)
    EXPECT_EQ(a.invariant_violations, b.invariant_violations);
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(rem::testkit::hash_event_log(a.events),
            rem::testkit::hash_event_log(b.events));
}

/// Single-UE run built with fleet_runner.hpp's documented construction
/// order (manager master stream forked before the simulation stream), so
/// its output is the reference a fleet of one must reproduce bit-for-bit.
rem::sim::SimStats run_single(rem::trace::Route route, double speed_kmh,
                              double duration_s, std::uint64_t seed,
                              bool use_rem, const FleetRunOptions& opts,
                              rem::sim::SimEngine engine) {
  namespace sim = rem::sim;
  namespace core = rem::core;
  auto sc = rem::trace::make_scenario(route, speed_kmh, duration_s);
  sc.sim.faults = opts.faults;
  sc.sim.record_events = sc.sim.record_events || opts.record_events;
  if (opts.backhaul) sc.sim.backhaul = *opts.backhaul;
  if (opts.bs_capacity) sc.sim.bs_capacity = *opts.bs_capacity;
  if (opts.fleet) sc.sim.fleet = *opts.fleet;
  sc.sim.engine = engine;

  rem::common::Rng rng(seed);
  auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto holes = sim::make_hole_segments(sc.deployment, rng);
  sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = rem::trace::synthesize_policies(cells, sc.policy_mix, rng);
  core::LegacyConfig lc;
  lc.policies = policies;
  lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
  lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;
  rem::common::Rng mgr_rng = rng.fork();
  rem::common::Rng sim_rng = rng.fork();
  rem::phy::LogisticBlerModel bler;
  sim::Simulator s(env, sc.sim, bler, std::move(sim_rng));
  if (use_rem) {
    core::RemManager m(core::RemConfig{}, mgr_rng.fork());
    return s.run(m);
  }
  core::LegacyManager m(lc);
  return s.run(m);
}

TEST(Fleet, FleetOfOneReproducesSingleUeRunExactly) {
  FleetRunOptions opts;
  opts.fleet_size = 1;
  opts.record_events = true;
  opts.faults = rem::testkit::golden_fault_preset("mixed", 60.0);
  for (bool use_rem : {false, true}) {
    SCOPED_TRACE(use_rem ? "rem" : "legacy");
    opts.use_rem = use_rem;
    const auto single =
        run_single(rem::trace::Route::kBeijingTaiyuan, 250.0, 60.0, 21,
                   use_rem, opts, rem::sim::SimEngine::kEventQueue);
    const auto fleet = run_fleet_seed(rem::trace::Route::kBeijingTaiyuan,
                                      250.0, 60.0, 21,
                                      rem::phy::LogisticBlerModel{}, opts);
    ASSERT_EQ(fleet.per_ue.size(), 1u);
    // The bare single run carries no checker, so skip the violation
    // counter (the fleet's checkers wrote 0 anyway).
    expect_stats_eq(fleet.per_ue[0], single, /*compare_violations=*/false);
    EXPECT_EQ(fleet.per_ue[0].invariant_violations, 0);
    // A one-UE aggregate is that UE's stats verbatim.
    expect_stats_eq(fleet.aggregate, fleet.per_ue[0]);
  }
}

TEST(Fleet, TickLoopAndEventQueueDriversBitIdentical) {
  FleetRunOptions opts;
  opts.record_events = true;
  opts.faults = rem::testkit::golden_fault_preset("bs_overload_shed", 60.0);
  for (bool use_rem : {false, true}) {
    SCOPED_TRACE(use_rem ? "rem" : "legacy");
    const auto ticked =
        run_single(rem::trace::Route::kBeijingShanghai, 300.0, 60.0, 22,
                   use_rem, opts, rem::sim::SimEngine::kTickLoop);
    const auto queued =
        run_single(rem::trace::Route::kBeijingShanghai, 300.0, 60.0, 22,
                   use_rem, opts, rem::sim::SimEngine::kEventQueue);
    expect_stats_eq(queued, ticked);
  }
}

/// Run one fleet per seed on `threads` workers; results come back in seed
/// order whatever the interleaving.
std::vector<rem::sim::FleetResult> run_fleet_batch(
    const std::vector<std::uint64_t>& seeds, std::size_t threads,
    const FleetRunOptions& opts) {
  std::vector<rem::sim::FleetResult> out(seeds.size());
  rem::phy::LogisticBlerModel bler;
  rem::common::parallel_for(seeds.size(), threads, [&](std::size_t i) {
    out[i] = run_fleet_seed(rem::trace::Route::kBeijingTaiyuan, 250.0, 30.0,
                            seeds[i], bler, opts);
  });
  return out;
}

TEST(Fleet, BatchBitIdenticalAcrossOneTwoEightThreads) {
  FleetRunOptions opts;
  opts.fleet_size = 6;
  opts.record_events = true;
  opts.faults = rem::testkit::golden_fault_preset("bs_overload_shed", 30.0);
  const std::vector<std::uint64_t> seeds = {31, 32, 33, 34, 35, 36};
  const auto at1 = run_fleet_batch(seeds, 1, opts);
  const auto at2 = run_fleet_batch(seeds, 2, opts);
  const auto at8 = run_fleet_batch(seeds, 8, opts);
  ASSERT_EQ(at1.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seeds[i]));
    ASSERT_EQ(at1[i].per_ue.size(), static_cast<std::size_t>(opts.fleet_size));
    ASSERT_EQ(at2[i].per_ue.size(), at1[i].per_ue.size());
    ASSERT_EQ(at8[i].per_ue.size(), at1[i].per_ue.size());
    for (std::size_t k = 0; k < at1[i].per_ue.size(); ++k) {
      SCOPED_TRACE("ue " + std::to_string(k));
      expect_stats_eq(at2[i].per_ue[k], at1[i].per_ue[k]);
      expect_stats_eq(at8[i].per_ue[k], at1[i].per_ue[k]);
    }
    expect_stats_eq(at2[i].aggregate, at1[i].aggregate);
    expect_stats_eq(at8[i].aggregate, at1[i].aggregate);
  }
}

TEST(Fleet, PerUeStatsFoldIntoAggregate) {
  FleetRunOptions opts;
  opts.fleet_size = 8;
  opts.record_events = true;
  opts.faults = rem::testkit::golden_fault_preset("backhaul_partition", 40.0);
  const auto r = run_fleet_seed(rem::trace::Route::kBeijingShanghai, 300.0,
                                40.0, 41, rem::phy::LogisticBlerModel{}, opts);
  ASSERT_EQ(r.per_ue.size(), 8u);
  // Mixed per-UE parameters actually took effect: UEs do not all ride the
  // same trajectory, so their tick-by-tick event streams differ.
  bool any_differs = false;
  for (std::size_t k = 1; k < r.per_ue.size(); ++k)
    any_differs = any_differs ||
                  rem::testkit::hash_event_log(r.per_ue[k].events) !=
                      rem::testkit::hash_event_log(r.per_ue[0].events);
  EXPECT_TRUE(any_differs);
  int handovers = 0, failures = 0, prep_requests = 0;
  std::size_t events = 0;
  for (int k = 0; k < 8; ++k) {
    const auto& s = r.per_ue[static_cast<std::size_t>(k)];
    handovers += s.handovers;
    failures += s.failures;
    prep_requests += s.prep_requests;
    events += s.events.size();
    for (const auto& e : s.events) EXPECT_EQ(e.ue, k);
  }
  EXPECT_EQ(r.aggregate.handovers, handovers);
  EXPECT_EQ(r.aggregate.failures, failures);
  EXPECT_EQ(r.aggregate.prep_requests, prep_requests);
  EXPECT_EQ(r.aggregate.events.size(), events);
  EXPECT_GT(handovers, 0);
  // The merged log is time-sorted: no cross-UE timestamp regression.
  for (std::size_t i = 1; i < r.aggregate.events.size(); ++i)
    ASSERT_GE(r.aggregate.events[i].t_s, r.aggregate.events[i - 1].t_s);
  // The runner already threw on violations; double-check the report API.
  EXPECT_TRUE(rem::testkit::fleet_invariant_report(r).empty());
}

// The ISSUE acceptance case: a 100-UE fleet completes deterministically
// under one InvariantChecker per UE, and repeating the run (serially or on
// a pool) reproduces it bit-for-bit.
TEST(Fleet, HundredUeFleetCompletesUnderChecker) {
  FleetRunOptions opts;
  opts.fleet_size = 100;
  opts.faults = rem::testkit::golden_fault_preset("mixed", 12.0);
  const auto run_once = [&] {
    return run_fleet_seed(rem::trace::Route::kBeijingShanghai, 300.0, 12.0,
                          51, rem::phy::LogisticBlerModel{}, opts);
  };
  const auto a = run_once();
  ASSERT_EQ(a.per_ue.size(), 100u);
  for (const auto& s : a.per_ue) EXPECT_GT(s.sim_time_s, 11.0);
  EXPECT_EQ(a.aggregate.invariant_violations, 0);
  // Two more copies on a 2-thread pool: all three runs identical.
  std::vector<rem::sim::FleetResult> again(2);
  rem::common::parallel_for(again.size(), 2,
                            [&](std::size_t i) { again[i] = run_once(); });
  for (const auto& b : again) {
    ASSERT_EQ(b.per_ue.size(), a.per_ue.size());
    expect_stats_eq(b.per_ue.front(), a.per_ue.front());
    expect_stats_eq(b.per_ue.back(), a.per_ue.back());
    expect_stats_eq(b.aggregate, a.aggregate);
  }
}

}  // namespace
