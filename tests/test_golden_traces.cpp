// Golden-trace regression suite: replay every corpus case and diff its
// digest — all SimStats scalars plus an exact event-log hash — against
// the committed JSON under tests/golden/. Any behavioral drift fails with
// the exact field(s) that moved; run scripts/update_goldens.sh when the
// change is intentional. Also unit-tests the digest codec itself.
#include "golden_runner.hpp"

#include "common/thread_pool.hpp"
#include "testkit/golden.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

namespace {

using rem::testkit::GoldenCase;
using rem::testkit::TraceDigest;

TEST(GoldenTraces, CorpusCoversAllRoutesAndFaultPresets) {
  const auto corpus = rem::testkit::golden_corpus();
  ASSERT_GE(corpus.size(), 12u);
  bool la = false, bt = false, bs = false, none = false, mixed = false;
  bool partition = false, loss_reorder = false;
  for (const auto& c : corpus) {
    la = la || c.route == rem::trace::Route::kLowMobilityLA;
    bt = bt || c.route == rem::trace::Route::kBeijingTaiyuan;
    bs = bs || c.route == rem::trace::Route::kBeijingShanghai;
    none = none || c.fault_preset == "none";
    mixed = mixed || c.fault_preset == "mixed";
    partition = partition || c.fault_preset == "backhaul_partition";
    loss_reorder = loss_reorder || c.fault_preset == "backhaul_loss_reorder";
  }
  EXPECT_TRUE(la && bt && bs);
  EXPECT_TRUE(none && mixed);
  EXPECT_TRUE(partition && loss_reorder);
}

TEST(GoldenTraces, FleetCorpusCoversContentionAndPartition) {
  const auto fleet = rem::testkit::fleet_golden_corpus();
  ASSERT_GE(fleet.size(), 2u);
  bool overload = false, partition = false;
  for (const auto& c : fleet) {
    EXPECT_GE(c.fleet_size, 2) << c.name;
    EXPECT_EQ(c.name.rfind("fleet_", 0), 0u) << c.name;
    overload = overload || c.fault_preset == "bs_overload_shed";
    partition = partition || c.fault_preset == "backhaul_partition";
  }
  EXPECT_TRUE(overload && partition);
}

// The replay: one corpus case per thread-pool job (REM_BENCH_THREADS
// respected via bench_threads()), each diffed against its committed
// digest. The runs are seed-deterministic, so this passes identically at
// any thread count.
TEST(GoldenTraces, ReplayMatchesCommittedDigests) {
  const auto jobs = rem::testkit::golden_jobs();
  std::vector<TraceDigest> actual(jobs.size());
  std::vector<std::string> errors(jobs.size());
  rem::common::parallel_for(
      jobs.size(), rem::bench::bench_threads(), [&](std::size_t i) {
        try {
          actual[i] = jobs[i].run();
        } catch (const std::exception& e) {
          errors[i] = e.what();
        }
      });
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SCOPED_TRACE("case " + jobs[i].name);
    ASSERT_TRUE(errors[i].empty()) << errors[i];
    TraceDigest expected;
    try {
      expected = rem::testkit::read_digest_json_file(
          std::string(REM_GOLDEN_DIR) + "/" + jobs[i].name + ".json");
    } catch (const std::exception& e) {
      FAIL() << "cannot load committed digest (run "
                "scripts/update_goldens.sh?): "
             << e.what();
    }
    const auto diff = rem::testkit::diff_digests(expected, actual[i]);
    for (const auto& line : diff) ADD_FAILURE() << line;
    EXPECT_TRUE(diff.empty())
        << diff.size()
        << " field(s) drifted; run scripts/update_goldens.sh if the "
           "behavior change is intentional";
  }
}

// ---- Digest codec ----

TEST(GoldenDigest, JsonRoundTripIsExact) {
  TraceDigest d;
  d.case_name = "codec_case";
  d.fields = {{"route", "bs"},
              {"legacy.handovers", "12"},
              {"legacy.mean_throughput_bps", "123456789.12345679"},
              {"rem.event_hash", "0x00ff00ff00ff00ff"},
              {"weird \"quoted\" key", "back\\slash"}};
  std::ostringstream os;
  rem::testkit::write_digest_json(d, os);
  std::istringstream is(os.str());
  const auto back = rem::testkit::read_digest_json(is);
  EXPECT_EQ(back.case_name, d.case_name);
  EXPECT_EQ(back.fields, d.fields);
  EXPECT_TRUE(rem::testkit::diff_digests(d, back).empty());
}

TEST(GoldenDigest, DiffNamesEveryDriftedField) {
  TraceDigest a, b;
  a.case_name = b.case_name = "x";
  a.fields = {{"f1", "1"}, {"f2", "2"}, {"f3", "3"}};
  b.fields = {{"f1", "1"}, {"f2", "99"}, {"f4", "4"}};
  const auto diff = rem::testkit::diff_digests(a, b);
  ASSERT_EQ(diff.size(), 3u);  // f2 changed, f3 missing, f4 extra
  EXPECT_NE(diff[0].find("f2"), std::string::npos);
  EXPECT_NE(diff[0].find("expected '2', got '99'"), std::string::npos);
}

TEST(GoldenDigest, ReaderRejectsMalformedInputWithContext) {
  const auto reject = [](const std::string& text) {
    std::istringstream is(text);
    try {
      rem::testkit::read_digest_json(is);
      return std::string();
    } catch (const std::runtime_error& e) {
      return std::string(e.what());
    }
  };
  EXPECT_NE(reject("{\n  \"case\": \"a\"\n").find("unterminated"),
            std::string::npos);
  EXPECT_NE(reject("{\n  not json\n}\n").find("line 2"), std::string::npos);
  EXPECT_NE(reject("{\n  \"k\": \"v\"\n}\n").find("missing the 'case'"),
            std::string::npos);
  EXPECT_NE(reject("").find("unterminated"), std::string::npos);
  EXPECT_FALSE(reject("junk before\n{\n}\n").empty());
}

TEST(GoldenDigest, EventHashIsOrderAndValueSensitive) {
  rem::sim::EventLog log;
  log.push_back({1.0, rem::sim::EventKind::kHandoverComplete, 0, 1, -3.5});
  log.push_back({2.0, rem::sim::EventKind::kRadioLinkFailure, 1, -1, -9.0});
  const auto h = rem::testkit::hash_event_log(log);
  EXPECT_EQ(h, rem::testkit::hash_event_log(log));  // deterministic

  auto reordered = log;
  std::swap(reordered[0], reordered[1]);
  EXPECT_NE(h, rem::testkit::hash_event_log(reordered));

  auto tweaked = log;
  tweaked[1].serving_snr_db += 1e-12;  // any bit flip must show
  EXPECT_NE(h, rem::testkit::hash_event_log(tweaked));

  EXPECT_NE(h, rem::testkit::hash_event_log({}));
}

TEST(GoldenDigest, UnknownFaultPresetIsRejected) {
  EXPECT_THROW(rem::testkit::golden_fault_preset("nope", 100.0),
               std::invalid_argument);
  EXPECT_TRUE(rem::testkit::golden_fault_preset("none", 100.0).empty());
  EXPECT_FALSE(rem::testkit::golden_fault_preset("mixed", 100.0).empty());
  EXPECT_FALSE(
      rem::testkit::golden_fault_preset("backhaul_partition", 100.0).empty());
  EXPECT_FALSE(rem::testkit::golden_fault_preset("backhaul_loss_reorder",
                                                 100.0)
                   .empty());
}

TEST(GoldenDigest, BackhaulPresetsPassScriptedValidation) {
  // Every committed preset must survive the injector's scripted-window
  // validation at a representative horizon.
  for (const char* preset :
       {"mixed", "backhaul_partition", "backhaul_loss_reorder"}) {
    SCOPED_TRACE(preset);
    const auto fc = rem::testkit::golden_fault_preset(preset, 120.0);
    EXPECT_NO_THROW(
        rem::sim::FaultInjector(fc, 120.0, rem::common::Rng(1)));
  }
}

}  // namespace
