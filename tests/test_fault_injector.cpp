// FaultInjector determinism and the chaos harness's end-to-end guarantees:
// identical (config, seed) pairs replay identical fault timelines and
// produce bit-identical SimStats, serial or seed-parallel at any thread
// count; every fault class has an observable effect on the right counter.
#include "scenario_runner.hpp"
#include "sim/fault_injector.hpp"
#include "trace/scenario.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rs = rem::sim;

namespace {

bool same_windows(const std::vector<rs::FaultWindow>& a,
                  const std::vector<rs::FaultWindow>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].kind != b[i].kind || a[i].start_s != b[i].start_s ||
        a[i].duration_s != b[i].duration_s ||
        a[i].magnitude != b[i].magnitude)
      return false;
  }
  return true;
}

// Bit-identity over every SimStats field (doubles compared with == on
// purpose: the determinism guarantee is exact replay, not tolerance).
void expect_identical(const rs::SimStats& a, const rs::SimStats& b) {
  EXPECT_EQ(a.sim_time_s, b.sim_time_s);
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.successful_handovers, b.successful_handovers);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.failures_by_cause, b.failures_by_cause);
  EXPECT_EQ(a.loop_handovers, b.loop_handovers);
  EXPECT_EQ(a.loop_episodes, b.loop_episodes);
  EXPECT_EQ(a.avg_handover_interval_s, b.avg_handover_interval_s);
  EXPECT_EQ(a.outage_durations_s, b.outage_durations_s);
  EXPECT_EQ(a.feedback_delays_s, b.feedback_delays_s);
  EXPECT_EQ(a.report_retransmits, b.report_retransmits);
  EXPECT_EQ(a.t304_expiries, b.t304_expiries);
  EXPECT_EQ(a.t304_fallback_success, b.t304_fallback_success);
  EXPECT_EQ(a.duplicate_commands, b.duplicate_commands);
  EXPECT_EQ(a.degraded_enters, b.degraded_enters);
  EXPECT_EQ(a.degraded_time_s, b.degraded_time_s);
  EXPECT_EQ(a.mean_throughput_bps, b.mean_throughput_bps);
  EXPECT_EQ(a.downtime_fraction, b.downtime_fraction);
  EXPECT_EQ(a.pre_failure_snrs_db, b.pre_failure_snrs_db);
  EXPECT_EQ(a.prep_requests, b.prep_requests);
  EXPECT_EQ(a.prep_retries, b.prep_retries);
  EXPECT_EQ(a.prep_acks, b.prep_acks);
  EXPECT_EQ(a.prep_rejects, b.prep_rejects);
  EXPECT_EQ(a.prep_fallbacks, b.prep_fallbacks);
  EXPECT_EQ(a.prep_failures, b.prep_failures);
  EXPECT_EQ(a.prep_rtt_sum_s, b.prep_rtt_sum_s);
  EXPECT_EQ(a.context_fetch_failures, b.context_fetch_failures);
  EXPECT_EQ(a.backhaul_sent, b.backhaul_sent);
  EXPECT_EQ(a.backhaul_delivered, b.backhaul_delivered);
  EXPECT_EQ(a.backhaul_dropped_loss, b.backhaul_dropped_loss);
  EXPECT_EQ(a.backhaul_dropped_partition, b.backhaul_dropped_partition);
  EXPECT_EQ(a.backhaul_dropped_queue, b.backhaul_dropped_queue);
  EXPECT_EQ(a.backhaul_duplicated, b.backhaul_duplicated);
  EXPECT_EQ(a.backhaul_reordered, b.backhaul_reordered);
  EXPECT_EQ(a.backhaul_latency_sum_s, b.backhaul_latency_sum_s);
  EXPECT_EQ(a.backhaul_dropped_crash, b.backhaul_dropped_crash);
  EXPECT_EQ(a.bs_jobs_submitted, b.bs_jobs_submitted);
  EXPECT_EQ(a.bs_jobs_served, b.bs_jobs_served);
  EXPECT_EQ(a.bs_jobs_queued, b.bs_jobs_queued);
  EXPECT_EQ(a.bs_queue_shed, b.bs_queue_shed);
  EXPECT_EQ(a.bs_jobs_flushed, b.bs_jobs_flushed);
  EXPECT_EQ(a.bs_jobs_inflight_end, b.bs_jobs_inflight_end);
  EXPECT_EQ(a.bs_queue_wait_sum_s, b.bs_queue_wait_sum_s);
  EXPECT_EQ(a.admission_rejects, b.admission_rejects);
  EXPECT_EQ(a.admission_backoff_retries, b.admission_backoff_retries);
  EXPECT_EQ(a.bs_crashes, b.bs_crashes);
  EXPECT_EQ(a.bs_crash_dropped_msgs, b.bs_crash_dropped_msgs);
  EXPECT_EQ(a.stale_context_responses, b.stale_context_responses);
}

/// Periodic scripted windows of one kind over [first_s, horizon_s).
rs::FaultConfig periodic(rs::FaultKind kind, double first_s, double period_s,
                         double duration_s, double magnitude,
                         double horizon_s) {
  rs::FaultConfig cfg;
  for (double t = first_s; t < horizon_s; t += period_s)
    cfg.windows.push_back({kind, t, duration_s, magnitude});
  return cfg;
}

}  // namespace

TEST(FaultKindName, NamesAllKindsAndRejectsInvalid) {
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kSignalingLoss),
            "signaling_burst_loss");
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kPilotOutage),
            "pilot_outage");
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kProcessingStall),
            "processing_stall");
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kCoverageBlackout),
            "coverage_blackout");
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kCommandDuplication),
            "command_duplication");
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kBackhaulLoss),
            "backhaul_loss");
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kBackhaulDelay),
            "backhaul_delay");
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kBackhaulPartition),
            "backhaul_partition");
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kBsOverload), "bs_overload");
  EXPECT_EQ(rs::fault_kind_name(rs::FaultKind::kBsCrashRestart),
            "bs_crash_restart");
  EXPECT_THROW(rs::fault_kind_name(static_cast<rs::FaultKind>(99)),
               std::invalid_argument);
}

TEST(FaultKindName, RoundTripsEveryRegisteredKind) {
  // Exhaustive over kNumFaultKinds: a kind can never ship with a name the
  // parser does not resolve back (configs and JSON would silently rot).
  for (std::size_t i = 0; i < rs::kNumFaultKinds; ++i) {
    const auto k = static_cast<rs::FaultKind>(i);
    const auto name = rs::fault_kind_name(k);
    EXPECT_FALSE(name.empty());
    EXPECT_EQ(rs::fault_kind_from_name(name), k) << name;
  }
  EXPECT_THROW(rs::fault_kind_from_name("no_such_fault"),
               std::invalid_argument);
  EXPECT_THROW(rs::fault_kind_from_name(""), std::invalid_argument);
}

TEST(FaultInjector, DefaultInjectorIsInert) {
  rs::FaultInjector fi;
  EXPECT_FALSE(fi.any());
  EXPECT_FALSE(fi.active(rs::FaultKind::kSignalingLoss, 10.0));
  EXPECT_EQ(fi.magnitude(rs::FaultKind::kCoverageBlackout, 10.0), 0.0);
}

TEST(FaultInjector, ScriptedWindowsAdjacentKindsAndBounds) {
  rs::FaultConfig cfg;
  cfg.windows = {
      // Touching same-kind windows are legal: the end is exclusive, so
      // [10, 15) and [15, 20) never overlap.
      {rs::FaultKind::kSignalingLoss, 10.0, 5.0, 0.5},
      {rs::FaultKind::kSignalingLoss, 15.0, 5.0, 0.9},
      {rs::FaultKind::kCoverageBlackout, 30.0, 4.0, 60.0},
  };
  rs::FaultInjector fi(cfg, 100.0, rem::common::Rng(1));
  ASSERT_TRUE(fi.any());
  EXPECT_EQ(fi.magnitude(rs::FaultKind::kSignalingLoss, 11.0), 0.5);
  // The boundary tick belongs to the later window.
  EXPECT_EQ(fi.magnitude(rs::FaultKind::kSignalingLoss, 15.0), 0.9);
  EXPECT_EQ(fi.magnitude(rs::FaultKind::kSignalingLoss, 17.0), 0.9);
  EXPECT_EQ(fi.magnitude(rs::FaultKind::kSignalingLoss, 25.0), 0.0);
  // Kinds do not bleed into each other.
  EXPECT_TRUE(fi.active(rs::FaultKind::kCoverageBlackout, 31.0));
  EXPECT_FALSE(fi.active(rs::FaultKind::kSignalingLoss, 31.0));
  // Window end is exclusive, start inclusive.
  EXPECT_TRUE(fi.active(rs::FaultKind::kCoverageBlackout, 30.0));
  EXPECT_FALSE(fi.active(rs::FaultKind::kCoverageBlackout, 34.0));
}

TEST(FaultInjector, RejectsInvalidScriptedWindows) {
  const auto build = [](std::vector<rs::FaultWindow> windows) {
    rs::FaultConfig cfg;
    cfg.windows = std::move(windows);
    rs::FaultInjector fi(cfg, 100.0, rem::common::Rng(1));
  };
  // Same-kind overlap is a schedule bug, not a "max wins" feature.
  EXPECT_THROW(build({{rs::FaultKind::kSignalingLoss, 10.0, 5.0, 0.5},
                      {rs::FaultKind::kSignalingLoss, 12.0, 8.0, 0.9}}),
               std::invalid_argument);
  // Different kinds may overlap freely.
  EXPECT_NO_THROW(build({{rs::FaultKind::kSignalingLoss, 10.0, 5.0, 0.5},
                         {rs::FaultKind::kPilotOutage, 12.0, 8.0, 2.0}}));
  EXPECT_THROW(build({{rs::FaultKind::kSignalingLoss, -1.0, 5.0, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(build({{rs::FaultKind::kSignalingLoss, 10.0, 0.0, 0.5}}),
               std::invalid_argument);
  EXPECT_THROW(build({{rs::FaultKind::kSignalingLoss, 10.0, 5.0, 0.0}}),
               std::invalid_argument);
  // Probability-valued kinds cap at 1; physical magnitudes do not.
  EXPECT_THROW(build({{rs::FaultKind::kSignalingLoss, 10.0, 5.0, 1.5}}),
               std::invalid_argument);
  EXPECT_THROW(build({{rs::FaultKind::kBackhaulLoss, 10.0, 5.0, 1.5}}),
               std::invalid_argument);
  EXPECT_NO_THROW(build({{rs::FaultKind::kBackhaulDelay, 10.0, 5.0, 1.5}}));
  EXPECT_NO_THROW(build({{rs::FaultKind::kCoverageBlackout, 10.0, 5.0,
                          60.0}}));
  // The thrown context names the window and both intervals on overlap.
  try {
    build({{rs::FaultKind::kBackhaulPartition, 10.0, 5.0, 1.0},
           {rs::FaultKind::kBackhaulPartition, 14.0, 5.0, 1.0}});
    FAIL() << "overlapping partitions were accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("backhaul_partition"), std::string::npos) << msg;
    EXPECT_NE(msg.find("overlap"), std::string::npos) << msg;
  }
}

TEST(FaultInjector, RandomScheduleIsDeterministicPerSeed) {
  rs::FaultConfig cfg;
  cfg.random = {{rs::FaultKind::kPilotOutage, 30.0, 2.0, 6.0, 1.0, 4.0},
                {rs::FaultKind::kSignalingLoss, 50.0, 1.0, 3.0, 0.5, 1.0}};
  const double horizon = 2000.0;
  rs::FaultInjector a(cfg, horizon, rem::common::Rng(42));
  rs::FaultInjector b(cfg, horizon, rem::common::Rng(42));
  rs::FaultInjector c(cfg, horizon, rem::common::Rng(43));
  EXPECT_TRUE(same_windows(a.windows(), b.windows()));
  EXPECT_FALSE(same_windows(a.windows(), c.windows()));

  ASSERT_FALSE(a.windows().empty());
  double prev_start = -1.0;
  for (const auto& w : a.windows()) {
    EXPECT_GE(w.start_s, 0.0);
    EXPECT_LT(w.start_s, horizon);
    EXPECT_GE(w.start_s, prev_start);  // sorted by start
    prev_start = w.start_s;
    if (w.kind == rs::FaultKind::kPilotOutage) {
      EXPECT_GE(w.duration_s, 2.0);
      EXPECT_LE(w.duration_s, 6.0);
      EXPECT_GE(w.magnitude, 1.0);
      EXPECT_LE(w.magnitude, 4.0);
    }
  }
}

TEST(FaultInjector, RejectsInvalidRandomSpecs) {
  const auto build = [](rs::RandomFaultSpec spec) {
    rs::FaultConfig cfg;
    cfg.random = {spec};
    rs::FaultInjector fi(cfg, 100.0, rem::common::Rng(1));
  };
  rs::RandomFaultSpec bad_gap;
  bad_gap.mean_gap_s = 0.0;
  EXPECT_THROW(build(bad_gap), std::invalid_argument);
  rs::RandomFaultSpec bad_dur;
  bad_dur.duration_lo_s = 5.0;
  bad_dur.duration_hi_s = 1.0;
  EXPECT_THROW(build(bad_dur), std::invalid_argument);
  rs::RandomFaultSpec bad_mag;
  bad_mag.magnitude_lo = 2.0;
  bad_mag.magnitude_hi = 1.0;
  EXPECT_THROW(build(bad_mag), std::invalid_argument);
}

// ---------- End-to-end determinism under faults ----------

namespace {

rs::FaultConfig mixed_fault_config(double horizon_s) {
  rs::FaultConfig cfg = periodic(rs::FaultKind::kSignalingLoss, 15.0, 60.0,
                                 5.0, 1.0, horizon_s);
  const auto pilot = periodic(rs::FaultKind::kPilotOutage, 35.0, 60.0, 8.0,
                              4.0, horizon_s);
  const auto black = periodic(rs::FaultKind::kCoverageBlackout, 55.0, 60.0,
                              4.0, 60.0, horizon_s);
  cfg.windows.insert(cfg.windows.end(), pilot.windows.begin(),
                     pilot.windows.end());
  cfg.windows.insert(cfg.windows.end(), black.windows.begin(),
                     black.windows.end());
  cfg.random = {{rs::FaultKind::kCommandDuplication, 40.0, 5.0, 20.0, 1.0,
                 1.0}};
  return cfg;
}

}  // namespace

TEST(ChaosDeterminism, SameSeedSameFaultsBitIdenticalStats) {
  const auto route = rem::trace::Route::kBeijingShanghai;
  const auto faults = mixed_fault_config(150.0);
  rem::phy::LogisticBlerModel bler;
  const auto a =
      rem::bench::run_seed(route, 300.0, 150.0, 7, true, bler, faults);
  const auto b =
      rem::bench::run_seed(route, 300.0, 150.0, 7, true, bler, faults);
  expect_identical(a.legacy, b.legacy);
  expect_identical(a.rem, b.rem);
}

TEST(ChaosDeterminism, ParallelMatchesSerialAcrossThreadCounts) {
  const std::vector<std::uint64_t> seeds = {4, 1, 9};
  const auto route = rem::trace::Route::kBeijingShanghai;
  const auto faults = mixed_fault_config(120.0);
  const auto serial =
      rem::bench::run_route(route, 300.0, 120.0, seeds, true, faults);
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto par = rem::bench::run_route_parallel(route, 300.0, 120.0,
                                                    seeds, true, threads,
                                                    faults);
    EXPECT_EQ(serial.legacy.handovers, par.legacy.handovers);
    EXPECT_EQ(serial.legacy.failures, par.legacy.failures);
    EXPECT_EQ(serial.legacy.by_cause, par.legacy.by_cause);
    EXPECT_EQ(serial.legacy.report_retransmits, par.legacy.report_retransmits);
    EXPECT_EQ(serial.legacy.duplicate_commands, par.legacy.duplicate_commands);
    EXPECT_EQ(serial.legacy.outage_durations_s, par.legacy.outage_durations_s);
    EXPECT_EQ(serial.rem.handovers, par.rem.handovers);
    EXPECT_EQ(serial.rem.failures, par.rem.failures);
    EXPECT_EQ(serial.rem.degraded_enters, par.rem.degraded_enters);
    EXPECT_EQ(serial.rem.degraded_time_s, par.rem.degraded_time_s);
    EXPECT_EQ(serial.rem.outage_durations_s, par.rem.outage_durations_s);
    EXPECT_EQ(serial.rem.prep_requests, par.rem.prep_requests);
    EXPECT_EQ(serial.rem.prep_retries, par.rem.prep_retries);
    EXPECT_EQ(serial.rem.prep_acks, par.rem.prep_acks);
    EXPECT_EQ(serial.rem.prep_rtt_sum_s, par.rem.prep_rtt_sum_s);
    EXPECT_EQ(serial.rem.backhaul_sent, par.rem.backhaul_sent);
    EXPECT_EQ(serial.rem.backhaul_delivered, par.rem.backhaul_delivered);
    EXPECT_EQ(serial.rem.backhaul_latency_sum_s,
              par.rem.backhaul_latency_sum_s);
  }
}

// ---------- Each fault class moves its counter ----------

namespace {

rem::bench::SeedRunResult run_with(const rs::FaultConfig& faults,
                                   double duration_s = 80.0) {
  rem::phy::LogisticBlerModel bler;
  return rem::bench::run_seed(rem::trace::Route::kBeijingShanghai, 300.0,
                              duration_s, 1, true, bler, faults);
}

}  // namespace

TEST(ChaosEffects, BurstLossTriggersReportRetransmissions) {
  const auto r = run_with(
      periodic(rs::FaultKind::kSignalingLoss, 15.0, 60.0, 5.0, 1.0, 80.0));
  EXPECT_GT(r.legacy.report_retransmits + r.rem.report_retransmits, 0);
}

TEST(ChaosEffects, PilotOutageDrivesRemIntoDegradedMode) {
  const auto r = run_with(
      periodic(rs::FaultKind::kPilotOutage, 15.0, 60.0, 8.0, 4.0, 80.0));
  EXPECT_GT(r.rem.degraded_enters, 0);
  EXPECT_GT(r.rem.degraded_time_s, 0.0);
  // Legacy has no cross-band estimator to degrade.
  EXPECT_EQ(r.legacy.degraded_enters, 0);
}

TEST(ChaosEffects, BlackoutCausesCoverageHoleFailures) {
  const auto r = run_with(
      periodic(rs::FaultKind::kCoverageBlackout, 15.0, 60.0, 4.0, 60.0,
               80.0));
  EXPECT_GT(r.legacy.failures + r.rem.failures, 0);
  EXPECT_FALSE(r.legacy.outage_durations_s.empty() &&
               r.rem.outage_durations_s.empty());
  const auto holes = [](const rs::SimStats& s) {
    const auto it = s.failures_by_cause.find(rs::FailureCause::kCoverageHole);
    return it != s.failures_by_cause.end() ? it->second : 0;
  };
  EXPECT_GT(holes(r.legacy) + holes(r.rem), 0);
}

TEST(ChaosEffects, DuplicationProducesDuplicateCommands) {
  const auto r = run_with(periodic(rs::FaultKind::kCommandDuplication, 10.0,
                                   60.0, 25.0, 1.0, 80.0));
  EXPECT_GT(r.legacy.duplicate_commands + r.rem.duplicate_commands, 0);
}

TEST(ChaosEffects, FaultAndDegradedTransitionsAppearInEventLog) {
  // Mirror run_seed but with event recording on: the log must show the
  // pilot-outage window opening/closing and REM entering/leaving degraded
  // mode inside it.
  auto sc = rem::trace::make_scenario(rem::trace::Route::kBeijingShanghai,
                                      300.0, 80.0);
  // Windows at 15 s and 45 s, both closing well before the 80 s run ends
  // so every fault_start has a matching fault_end in the log.
  sc.sim.faults =
      periodic(rs::FaultKind::kPilotOutage, 15.0, 30.0, 8.0, 4.0, 60.0);
  sc.sim.record_events = true;
  rem::common::Rng rng(1);
  auto cells = rs::make_rail_deployment(sc.deployment, rng);
  auto holes = rs::make_hole_segments(sc.deployment, rng);
  rs::RadioEnv env(cells, sc.propagation, rng.fork(), holes);

  rem::core::RemManager remm(rem::core::RemConfig{}, rng.fork());
  rem::phy::LogisticBlerModel bler;
  rs::Simulator sim(env, sc.sim, bler, rng.fork());
  const auto stats = sim.run(remm);

  int fault_starts = 0, fault_ends = 0, enters = 0, exits = 0;
  for (const auto& e : stats.events) {
    switch (e.kind) {
      case rs::EventKind::kFaultStart:
        ++fault_starts;
        EXPECT_EQ(e.target_cell,
                  static_cast<int>(rs::FaultKind::kPilotOutage));
        break;
      case rs::EventKind::kFaultEnd: ++fault_ends; break;
      case rs::EventKind::kDegradedEnter: ++enters; break;
      case rs::EventKind::kDegradedExit: ++exits; break;
      default: break;
    }
  }
  EXPECT_EQ(fault_starts, 2);
  EXPECT_EQ(fault_ends, 2);
  EXPECT_GT(enters, 0);
  EXPECT_GT(exits, 0);
  EXPECT_EQ(stats.degraded_enters, enters);
}
