#include "common/rng.hpp"
#include "phy/qam.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rp = rem::phy;

class QamRoundTrip : public ::testing::TestWithParam<rp::Modulation> {};

TEST_P(QamRoundTrip, HardDecisionRecoversBits) {
  rem::common::Rng rng(7);
  const std::size_t bps = rp::bits_per_symbol(GetParam());
  std::vector<std::uint8_t> bits(bps * 200);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  const auto syms = rp::qam_modulate(bits, GetParam());
  const auto rec = rp::qam_demodulate_hard(syms, GetParam());
  EXPECT_EQ(rec, bits);
}

TEST_P(QamRoundTrip, UnitAveragePower) {
  // Average over the whole constellation must be 1.
  const auto& pts = rp::constellation(GetParam());
  double p = 0;
  for (const auto& s : pts) p += std::norm(s);
  EXPECT_NEAR(p / static_cast<double>(pts.size()), 1.0, 1e-12);
}

TEST_P(QamRoundTrip, LlrSignMatchesHardDecision) {
  rem::common::Rng rng(9);
  const auto mod = GetParam();
  const std::size_t bps = rp::bits_per_symbol(mod);
  std::vector<std::uint8_t> bits(bps * 64);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  const auto syms = rp::qam_modulate(bits, mod);
  const std::vector<double> nv(syms.size(), 0.01);
  const auto llrs = rp::qam_demodulate_llr(syms, mod, nv);
  ASSERT_EQ(llrs.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == 0)
      EXPECT_GT(llrs[i], 0.0) << "bit " << i;
    else
      EXPECT_LT(llrs[i], 0.0) << "bit " << i;
  }
}

TEST_P(QamRoundTrip, NoisyLlrMostlyCorrect) {
  rem::common::Rng rng(11);
  const auto mod = GetParam();
  const std::size_t bps = rp::bits_per_symbol(mod);
  std::vector<std::uint8_t> bits(bps * 500);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  auto syms = rp::qam_modulate(bits, mod);
  for (auto& s : syms) s += rng.complex_gaussian(0.01);  // 20 dB SNR
  const std::vector<double> nv(syms.size(), 0.01);
  const auto llrs = rp::qam_demodulate_llr(syms, mod, nv);
  std::size_t wrong = 0;
  for (std::size_t i = 0; i < bits.size(); ++i)
    if ((llrs[i] < 0) != (bits[i] == 1)) ++wrong;
  EXPECT_LT(static_cast<double>(wrong) / static_cast<double>(bits.size()),
            0.01);
}

INSTANTIATE_TEST_SUITE_P(AllModulations, QamRoundTrip,
                         ::testing::Values(rp::Modulation::kBPSK,
                                           rp::Modulation::kQPSK,
                                           rp::Modulation::kQAM16,
                                           rp::Modulation::kQAM64));

TEST(Qam, BitsPerSymbol) {
  EXPECT_EQ(rp::bits_per_symbol(rp::Modulation::kBPSK), 1u);
  EXPECT_EQ(rp::bits_per_symbol(rp::Modulation::kQPSK), 2u);
  EXPECT_EQ(rp::bits_per_symbol(rp::Modulation::kQAM16), 4u);
  EXPECT_EQ(rp::bits_per_symbol(rp::Modulation::kQAM64), 6u);
}

TEST(Qam, RejectsMisalignedBitCount) {
  std::vector<std::uint8_t> bits(3, 0);
  EXPECT_THROW(rp::qam_modulate(bits, rp::Modulation::kQPSK),
               std::invalid_argument);
}

TEST(Qam, GrayNeighborsDifferByOneBit) {
  // Adjacent I-levels of 16QAM should map to bit groups at Hamming
  // distance 1 (Gray property) — this is what makes soft decoding strong.
  const auto mod = rp::Modulation::kQAM16;
  // Collect (I level -> bits) for symbols with identical Q bits.
  std::vector<std::pair<double, int>> ilevels;
  for (int v = 0; v < 16; ++v) {
    std::vector<std::uint8_t> bits = {
        static_cast<std::uint8_t>((v >> 3) & 1),
        static_cast<std::uint8_t>((v >> 2) & 1),
        static_cast<std::uint8_t>((v >> 1) & 1),
        static_cast<std::uint8_t>(v & 1)};
    if (bits[2] != 0 || bits[3] != 0) continue;  // fix Q bits to 00
    const auto s = rp::qam_modulate(bits, mod)[0];
    ilevels.push_back({s.real(), (bits[0] << 1) | bits[1]});
  }
  std::sort(ilevels.begin(), ilevels.end());
  ASSERT_EQ(ilevels.size(), 4u);
  for (std::size_t i = 1; i < ilevels.size(); ++i) {
    const int diff = ilevels[i - 1].second ^ ilevels[i].second;
    EXPECT_EQ(__builtin_popcount(static_cast<unsigned>(diff)), 1)
        << "levels " << i - 1 << "," << i;
  }
}
