#include "common/rng.hpp"
#include "dsp/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

using rem::dsp::CVec;
using rem::dsp::cd;

namespace {

CVec random_vec(std::size_t n, rem::common::Rng& rng) {
  CVec v(n);
  for (auto& x : v) x = rng.complex_gaussian(1.0);
  return v;
}

double max_err(const CVec& a, const CVec& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

// Direct O(n^2) DFT as the reference.
CVec dft_ref(const CVec& x) {
  const std::size_t n = x.size();
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cd sum(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(k * t) / static_cast<double>(n);
      sum += x[t] * cd(std::cos(ang), std::sin(ang));
    }
    out[k] = sum;
  }
  return out;
}

}  // namespace

TEST(Fft, IsPow2) {
  EXPECT_TRUE(rem::dsp::is_pow2(1));
  EXPECT_TRUE(rem::dsp::is_pow2(1024));
  EXPECT_FALSE(rem::dsp::is_pow2(0));
  EXPECT_FALSE(rem::dsp::is_pow2(12));
  EXPECT_FALSE(rem::dsp::is_pow2(1023));
}

class FftRoundTrip : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftRoundTrip, InverseRecoversInput) {
  rem::common::Rng rng(GetParam());
  const CVec x = random_vec(GetParam(), rng);
  CVec y = x;
  rem::dsp::fft(y);
  rem::dsp::ifft(y);
  EXPECT_LT(max_err(x, y), 1e-9) << "n=" << GetParam();
}

TEST_P(FftRoundTrip, MatchesDirectDft) {
  if (GetParam() > 512) GTEST_SKIP() << "reference DFT too slow";
  rem::common::Rng rng(GetParam() + 1);
  const CVec x = random_vec(GetParam(), rng);
  const CVec ref = dft_ref(x);
  CVec y = x;
  rem::dsp::fft(y);
  EXPECT_LT(max_err(ref, y), 1e-7) << "n=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 12, 13, 14,
                                           16, 60, 64, 100, 128, 360, 512,
                                           1200, 2048));

TEST(Fft, ParsevalPow2) {
  rem::common::Rng rng(11);
  const CVec x = random_vec(256, rng);
  CVec y = x;
  rem::dsp::fft(y);
  double ex = 0, ey = 0;
  for (const auto& v : x) ex += std::norm(v);
  for (const auto& v : y) ey += std::norm(v);
  EXPECT_NEAR(ey, ex * 256.0, 1e-6 * ex * 256.0);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  CVec x(64, cd(0, 0));
  x[0] = cd(1, 0);
  rem::dsp::fft(x);
  for (const auto& v : x) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(Fft, SingleToneLandsOnBin) {
  const std::size_t n = 48;  // non-power-of-two (Bluestein path)
  CVec x(n);
  const std::size_t bin = 5;
  for (std::size_t t = 0; t < n; ++t) {
    const double ang = 2.0 * std::numbers::pi * static_cast<double>(bin * t) /
                       static_cast<double>(n);
    x[t] = cd(std::cos(ang), std::sin(ang));
  }
  rem::dsp::fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == bin)
      EXPECT_NEAR(std::abs(x[k]), static_cast<double>(n), 1e-7);
    else
      EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-7);
  }
}

TEST(Fft, EmptyInputIsNoop) {
  CVec x;
  rem::dsp::fft(x);
  rem::dsp::ifft(x);
  EXPECT_TRUE(x.empty());
}

TEST(Fft, LinearityBluestein) {
  rem::common::Rng rng(13);
  const std::size_t n = 50;
  const CVec a = random_vec(n, rng);
  const CVec b = random_vec(n, rng);
  CVec sum(n);
  for (std::size_t i = 0; i < n; ++i) sum[i] = a[i] + cd(2, -1) * b[i];
  CVec fa = rem::dsp::fft_copy(a);
  CVec fb = rem::dsp::fft_copy(b);
  CVec fsum = rem::dsp::fft_copy(sum);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_LT(std::abs(fsum[i] - (fa[i] + cd(2, -1) * fb[i])), 1e-8);
}
