#include "channel/multipath.hpp"
#include "channel/noise.hpp"
#include "common/rng.hpp"
#include "phy/embedded_pilot.hpp"
#include "phy/otfs.hpp"

#include <gtest/gtest.h>

namespace rp = rem::phy;
namespace rch = rem::channel;
using rem::dsp::Matrix;
using rem::dsp::cd;

namespace {

rp::Numerology grid16x8() {
  rp::Numerology num;
  num.num_subcarriers = 16;
  num.num_symbols = 8;
  num.cp_len = 4;
  return num;
}

rp::EmbeddedPilotConfig centered_cfg() {
  rp::EmbeddedPilotConfig cfg;
  cfg.pilot_delay_bin = 4;
  cfg.pilot_doppler_bin = 4;
  cfg.guard_delay = 2;
  cfg.guard_doppler = 1;
  return cfg;
}

std::vector<cd> random_qpsk(std::size_t count, rem::common::Rng& rng) {
  std::vector<std::uint8_t> bits(count * 2);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  return rp::qam_modulate(bits, rp::Modulation::kQPSK);
}

}  // namespace

TEST(EmbeddedPilot, CapacityAccountsForGuardBox) {
  const auto cfg = centered_cfg();
  // Guard box: (2*2+1) delay x (2*2*1+1) Doppler = 5 x 5 = 25 bins.
  EXPECT_EQ(rp::embedded_data_capacity(16, 8, cfg), 16u * 8u - 25u);
}

TEST(EmbeddedPilot, FrameLayoutInvariants) {
  rem::common::Rng rng(1);
  const auto cfg = centered_cfg();
  const auto cap = rp::embedded_data_capacity(16, 8, cfg);
  const auto frame =
      rp::build_embedded_frame(16, 8, random_qpsk(cap, rng), cfg);
  EXPECT_EQ(frame.data_positions.size(), cap);
  // Pilot sits at its bin with the boost amplitude.
  EXPECT_NEAR(std::abs(frame.grid(4, 4)),
              std::pow(10.0, cfg.pilot_boost_db / 20.0), 1e-12);
  // Guard bins (other than the pilot) are zero.
  EXPECT_EQ(frame.grid(5, 4), cd(0, 0));
  EXPECT_EQ(frame.grid(3, 5), cd(0, 0));
  // Wrong data count throws.
  EXPECT_THROW(rp::build_embedded_frame(16, 8, random_qpsk(cap - 1, rng),
                                        cfg),
               std::invalid_argument);
}

TEST(EmbeddedPilot, TapEstimationOnGridChannel) {
  rem::common::Rng rng(2);
  const auto num = grid16x8();
  const auto cfg = centered_cfg();
  rch::Path p1, p2;
  p1.gain = cd(0.9, 0.0);
  p2.gain = cd(0.35, 0.2);
  p2.delay_s = 1.0 * num.delay_res_s();
  p2.doppler_hz = -1.0 * num.doppler_res_hz();
  rch::MultipathChannel ch({p1, p2});

  const auto cap = rp::embedded_data_capacity(16, 8, cfg);
  const auto frame =
      rp::build_embedded_frame(16, 8, random_qpsk(cap, rng), cfg);
  rp::OtfsModem modem(num);
  const auto rx =
      ch.apply_to_signal(modem.modulate(frame.grid), num.sample_rate_hz());
  const auto y = modem.demodulate(rx);

  const auto taps = rp::estimate_taps_from_pilot(y, cfg);
  ASSERT_GE(taps.size(), 2u);
  // Strongest tap: (0, 0) with ~p1.gain. Second: (1, N-1) with ~p2.gain.
  EXPECT_EQ(taps[0].delay_bin, 0u);
  EXPECT_EQ(taps[0].doppler_bin, 0u);
  EXPECT_LT(std::abs(taps[0].gain - p1.gain), 0.12);
  EXPECT_EQ(taps[1].delay_bin, 1u);
  EXPECT_EQ(taps[1].doppler_bin, 7u);  // -1 mod 8
  EXPECT_LT(std::abs(std::abs(taps[1].gain) - std::abs(p2.gain)), 0.12);
}

TEST(EmbeddedPilot, EndToEndRecoversData) {
  rem::common::Rng rng(3);
  const auto num = grid16x8();
  const auto cfg = centered_cfg();
  rch::Path p1, p2;
  p1.gain = cd(0.9, 0.1);
  p2.gain = cd(0.3, -0.2);
  p2.delay_s = 2.0 * num.delay_res_s();
  p2.doppler_hz = 1.0 * num.doppler_res_hz();
  rch::MultipathChannel ch({p1, p2});
  ch.normalize_power();

  const auto cap = rp::embedded_data_capacity(16, 8, cfg);
  const auto tx = random_qpsk(cap, rng);
  const auto frame = rp::build_embedded_frame(16, 8, tx, cfg);
  rp::OtfsModem modem(num);
  auto rx =
      ch.apply_to_signal(modem.modulate(frame.grid), num.sample_rate_hz());
  const double noise = rch::noise_power_for_snr_db(22.0);
  rch::add_awgn(rx, noise, rng);
  const auto y = modem.demodulate(rx);

  const auto res = rp::embedded_receive(y, cfg, rp::Modulation::kQPSK,
                                        noise);
  ASSERT_EQ(res.data_symbols.size(), cap);
  const auto& constel = rp::constellation(rp::Modulation::kQPSK);
  std::size_t errors = 0;
  for (std::size_t i = 0; i < cap; ++i) {
    std::size_t best = 0;
    double bd = 1e18;
    for (std::size_t s = 0; s < constel.size(); ++s) {
      const double d = std::norm(res.data_symbols[i] - constel[s]);
      if (d < bd) {
        bd = d;
        best = s;
      }
    }
    errors += std::abs(constel[best] - tx[i]) > 1e-9;
  }
  EXPECT_LE(errors, cap / 25) << errors << " of " << cap;
}

TEST(EmbeddedPilot, SelfContainedFramesAcrossChannels) {
  // Property: the same frame layout works for any channel within the
  // guard budget — each frame carries its own sounding.
  rem::common::Rng rng(4);
  const auto num = grid16x8();
  const auto cfg = centered_cfg();
  const auto cap = rp::embedded_data_capacity(16, 8, cfg);
  for (int trial = 0; trial < 5; ++trial) {
    rch::Path p;
    p.gain = cd(1, 0);
    p.delay_s = static_cast<double>(trial % 3) * num.delay_res_s();
    p.doppler_hz =
        static_cast<double>((trial % 3) - 1) * num.doppler_res_hz();
    rch::MultipathChannel ch({p});
    const auto tx = random_qpsk(cap, rng);
    const auto frame = rp::build_embedded_frame(16, 8, tx, cfg);
    rp::OtfsModem modem(num);
    const auto rx = ch.apply_to_signal(modem.modulate(frame.grid),
                                       num.sample_rate_hz());
    const auto res = rp::embedded_receive(modem.demodulate(rx), cfg,
                                          rp::Modulation::kQPSK, 1e-4);
    ASSERT_FALSE(res.taps.empty()) << "trial " << trial;
    EXPECT_EQ(res.taps[0].delay_bin,
              static_cast<std::size_t>(trial % 3));
  }
}
