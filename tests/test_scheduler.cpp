#include "phy/scheduler.hpp"

#include <gtest/gtest.h>

namespace rp = rem::phy;

namespace {
rp::SignalingScheduler make_sched() {
  return rp::SignalingScheduler(rp::Numerology::lte(12, 14),
                                rp::Modulation::kQPSK);
}
}  // namespace

TEST(GridRect, ContainsAndOverlaps) {
  rp::GridRect a{0, 0, 12, 4};
  rp::GridRect b{0, 4, 12, 10};
  rp::GridRect c{0, 2, 12, 4};
  EXPECT_TRUE(a.contains(0, 0));
  EXPECT_TRUE(a.contains(11, 3));
  EXPECT_FALSE(a.contains(11, 4));
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(b.overlaps(c));
  EXPECT_EQ(a.res(), 48u);
}

TEST(Scheduler, ResForBytes) {
  // 10 bytes = 80 bits -> coded 2*(80+6) = 172 -> /2 bits per QPSK sym = 86.
  EXPECT_EQ(rp::res_for_bytes(10, rp::Modulation::kQPSK), 86u);
  // 64QAM packs 3x more per RE (ceil(172/6) = 29).
  EXPECT_EQ(rp::res_for_bytes(10, rp::Modulation::kQAM64), 29u);
}

TEST(Scheduler, NoSignalingMeansAllData) {
  auto s = make_sched();
  s.enqueue({1, 15, false});  // 126 REs, fits the 168-RE grid
  const auto alloc = s.schedule_subframe();
  EXPECT_FALSE(alloc.signaling.has_value());
  ASSERT_EQ(alloc.data.size(), 1u);
  EXPECT_EQ(alloc.data[0].res(), 12u * 14u);
  EXPECT_EQ(alloc.served_data_ids, std::vector<std::uint64_t>{1});
}

TEST(Scheduler, SignalingGetsContiguousSubgridFirst) {
  auto s = make_sched();
  s.enqueue({7, 10, true});   // 86 REs
  s.enqueue({8, 500, false});
  const auto alloc = s.schedule_subframe();
  ASSERT_TRUE(alloc.signaling.has_value());
  const auto rect = *alloc.signaling;
  // 86 REs need ceil(86/12) = 8 symbols.
  EXPECT_EQ(rect.num_symbols, 8u);
  EXPECT_EQ(rect.num_subcarriers, 12u);
  EXPECT_EQ(rect.first_symbol, 0u);
  EXPECT_EQ(alloc.served_signaling_ids, std::vector<std::uint64_t>{7});
  // Data gets the remaining symbols and must not overlap signaling.
  ASSERT_EQ(alloc.data.size(), 1u);
  EXPECT_FALSE(alloc.data[0].overlaps(rect));
  EXPECT_EQ(alloc.data[0].res() + rect.res(), 12u * 14u);
  EXPECT_EQ(alloc.unused_res, rect.res() - 86u);
}

TEST(Scheduler, MultipleSignalingMessagesShareSubgrid) {
  auto s = make_sched();
  s.enqueue({1, 5, true});  // 2*(40+6)/2 = 46 REs
  s.enqueue({2, 5, true});
  const auto alloc = s.schedule_subframe();
  ASSERT_TRUE(alloc.signaling.has_value());
  EXPECT_EQ(alloc.served_signaling_ids.size(), 2u);
  EXPECT_GE(alloc.signaling->res(), 2u * 46u);
}

TEST(Scheduler, OversizedSignalingWaitsForNextSubframe) {
  auto s = make_sched();
  s.enqueue({1, 30, true});  // 246 REs > 168: never fits a single grid
  const auto alloc = s.schedule_subframe();
  EXPECT_TRUE(alloc.served_signaling_ids.empty());
  EXPECT_EQ(s.signaling_backlog_bytes(), 30u);
}

TEST(Scheduler, BacklogDrainsAcrossSubframes) {
  auto s = make_sched();
  for (std::uint64_t i = 0; i < 6; ++i) s.enqueue({i, 10, true});  // 86 REs ea
  // 168-RE grid fits one 86-RE message per subframe (2*86 > 168).
  std::size_t served = 0;
  for (int sub = 0; sub < 6; ++sub)
    served += s.schedule_subframe().served_signaling_ids.size();
  EXPECT_EQ(served, 6u);
  EXPECT_EQ(s.signaling_backlog_bytes(), 0u);
}

TEST(Scheduler, SignalingPreemptsData) {
  auto s = make_sched();
  // Saturate with data first, then a signaling message arrives.
  for (std::uint64_t i = 0; i < 10; ++i) s.enqueue({100 + i, 20, false});
  s.enqueue({1, 10, true});
  const auto alloc = s.schedule_subframe();
  ASSERT_TRUE(alloc.signaling.has_value());
  EXPECT_EQ(alloc.served_signaling_ids, std::vector<std::uint64_t>{1});
}

TEST(Scheduler, FifoOrderWithinClass) {
  auto s = make_sched();
  s.enqueue({1, 2, true});
  s.enqueue({2, 2, true});
  s.enqueue({3, 2, true});
  const auto alloc = s.schedule_subframe();
  EXPECT_EQ(alloc.served_signaling_ids,
            (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Scheduler, DataRespectsRemainingCapacity) {
  auto s = make_sched();
  s.enqueue({1, 10, true});            // 86 REs -> 8 symbols -> 96 REs
  s.enqueue({2, 8, false});            // 70 REs: fits in remaining 72
  s.enqueue({3, 8, false});            // does not fit anymore
  const auto alloc = s.schedule_subframe();
  EXPECT_EQ(alloc.served_data_ids, std::vector<std::uint64_t>{2});
  EXPECT_EQ(s.data_backlog_bytes(), 8u);
}
