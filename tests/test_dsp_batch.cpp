// Batched DSP pipeline vs. the scalar baselines: BatchMatrix layout
// round-trips, sfft_batch/isfft_batch against phy::sfft/phy::isfft,
// svd_batch against dsp::svd, and RemSvdEstimator::estimate_batch against
// a loop of estimate() — plus the batch-path contracts (thread-count
// determinism, zero steady-state allocations, ragged-batch grouping, and
// contextual rejection of empty inputs).
#include "crossband/rem_svd.hpp"
#include "dsp/arena.hpp"
#include "dsp/fft_batch.hpp"
#include "dsp/matrix.hpp"
#include "dsp/svd.hpp"
#include "phy/otfs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <string>
#include <vector>

namespace {

using rem::dsp::Arena;
using rem::dsp::BatchMatrix;
using rem::dsp::cd;
using rem::dsp::Matrix;

Matrix random_matrix(std::size_t rows, std::size_t cols, unsigned seed) {
  std::mt19937 rng(seed);
  std::normal_distribution<double> dist(0.0, 1.0);
  Matrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = cd(dist(rng), dist(rng));
  return m;
}

// Shapes exercising the radix-2 path (pow2), Bluestein on both axes
// (non-pow2), tall, wide, and the rectangular hot-path extremes.
struct Shape {
  std::size_t rows, cols;
};
const Shape kShapes[] = {{12, 14}, {64, 16}, {16, 12}, {128, 64}, {37, 8}};

TEST(BatchMatrix, LoadStoreRoundTrip) {
  Arena arena;
  for (const auto& sh : kShapes) {
    BatchMatrix bm(arena, 3, sh.rows, sh.cols);
    std::vector<Matrix> src;
    for (std::size_t b = 0; b < 3; ++b) {
      src.push_back(random_matrix(sh.rows, sh.cols, 100 + b));
      bm.load(b, src.back());
    }
    for (std::size_t b = 0; b < 3; ++b) {
      EXPECT_EQ(Matrix::max_abs_diff(bm.to_matrix(b), src[b]), 0.0);
      Matrix out;
      bm.store(b, out);
      EXPECT_EQ(Matrix::max_abs_diff(out, src[b]), 0.0);
    }
    arena.reset();
  }
}

TEST(BatchMatrix, LoadAdjoint) {
  Arena arena;
  const Matrix m = random_matrix(5, 9, 7);
  BatchMatrix bm(arena, 1, 9, 5);
  bm.load_adjoint(0, m);
  EXPECT_EQ(Matrix::max_abs_diff(bm.to_matrix(0), m.adjoint()), 0.0);
}

TEST(SfftBatch, MatchesScalarSfftAcrossShapesAndBatchSizes) {
  Arena arena;
  for (const auto& sh : kShapes) {
    for (std::size_t batch : {1u, 3u, 8u}) {
      BatchMatrix bm(arena, batch, sh.rows, sh.cols);
      std::vector<Matrix> src;
      for (std::size_t b = 0; b < batch; ++b) {
        src.push_back(random_matrix(sh.rows, sh.cols, 17 * b + sh.rows));
        bm.load(b, src[b]);
      }
      rem::dsp::sfft_batch(bm, arena);
      for (std::size_t b = 0; b < batch; ++b) {
        const Matrix want = rem::phy::sfft(src[b]);
        EXPECT_LT(Matrix::max_abs_diff(bm.to_matrix(b), want), 1e-10)
            << sh.rows << "x" << sh.cols << " batch " << batch << " b " << b;
      }
      arena.reset();
    }
  }
}

TEST(SfftBatch, IsfftMatchesScalarAndInverts) {
  Arena arena;
  for (const auto& sh : kShapes) {
    BatchMatrix bm(arena, 2, sh.rows, sh.cols);
    std::vector<Matrix> src;
    for (std::size_t b = 0; b < 2; ++b) {
      src.push_back(random_matrix(sh.rows, sh.cols, 31 * b + sh.cols));
      bm.load(b, src[b]);
    }
    rem::dsp::isfft_batch(bm, arena);
    for (std::size_t b = 0; b < 2; ++b) {
      const Matrix want = rem::phy::isfft(src[b]);
      EXPECT_LT(Matrix::max_abs_diff(bm.to_matrix(b), want), 1e-10);
    }
    // Unitary inverse: sfft undoes isfft.
    rem::dsp::sfft_batch(bm, arena);
    for (std::size_t b = 0; b < 2; ++b)
      EXPECT_LT(Matrix::max_abs_diff(bm.to_matrix(b), src[b]), 1e-10);
    arena.reset();
  }
}

TEST(SfftBatch, LargeBluesteinAxes) {
  // 600/1200 (factor of 3) and 1499 (prime) force the chirp-z path with
  // large convolution sizes on the within-column axis.
  Arena arena;
  for (std::size_t rows : {600u, 1200u, 1499u}) {
    BatchMatrix bm(arena, 1, rows, 6);
    const Matrix src = random_matrix(rows, 6, static_cast<unsigned>(rows));
    bm.load(0, src);
    rem::dsp::sfft_batch(bm, arena);
    const Matrix want = rem::phy::sfft(src);
    EXPECT_LT(Matrix::max_abs_diff(bm.to_matrix(0), want), 1e-9) << rows;
    arena.reset();
  }
  // Same sizes on the across-columns (vector-butterfly) axis.
  for (std::size_t cols : {600u, 1499u}) {
    BatchMatrix bm(arena, 1, 8, cols);
    const Matrix src = random_matrix(8, cols, static_cast<unsigned>(cols));
    bm.load(0, src);
    rem::dsp::sfft_batch(bm, arena);
    const Matrix want = rem::phy::sfft(src);
    EXPECT_LT(Matrix::max_abs_diff(bm.to_matrix(0), want), 1e-9) << cols;
    arena.reset();
  }
}

// Reconstruct U diag(sigma) V* from a BatchSvd slot.
Matrix reconstruct(const rem::dsp::BatchSvd& s, std::size_t b,
                   std::size_t rank) {
  const std::size_t m = s.u.rows();
  const std::size_t n = s.v.rows();
  Matrix out(m, n);
  for (std::size_t p = 0; p < rank; ++p) {
    const double sigma = s.sigma[b * s.r_max + p];
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        out(i, j) += s.u.at(b, i, p) * sigma * std::conj(s.v.at(b, j, p));
  }
  return out;
}

TEST(SvdBatch, MatchesScalarSvdAcrossShapesAndBatchSizes) {
  Arena arena;
  for (const auto& sh : kShapes) {
    for (std::size_t batch : {1u, 3u, 64u}) {
      BatchMatrix bm(arena, batch, sh.rows, sh.cols);
      std::vector<Matrix> src;
      for (std::size_t b = 0; b < batch; ++b) {
        src.push_back(random_matrix(sh.rows, sh.cols, 7 * b + sh.cols));
        bm.load(b, src[b]);
      }
      const auto s = rem::dsp::svd_batch(bm, arena);
      for (std::size_t b = 0; b < batch; ++b) {
        const auto want = rem::dsp::svd(src[b]);
        ASSERT_EQ(s.rank[b], want.sigma.size());
        for (std::size_t p = 0; p < s.rank[b]; ++p)
          EXPECT_NEAR(s.sigma[b * s.r_max + p], want.sigma[p], 1e-10);
        // Factors are unique only up to per-triplet phase; compare the
        // reconstruction instead.
        EXPECT_LT(Matrix::max_abs_diff(reconstruct(s, b, s.rank[b]), src[b]),
                  1e-10)
            << sh.rows << "x" << sh.cols << " batch " << batch;
      }
      arena.reset();
    }
  }
}

TEST(SvdBatch, RankTruncationMatchesScalar) {
  Arena arena;
  BatchMatrix bm(arena, 4, 24, 10);
  std::vector<Matrix> src;
  for (std::size_t b = 0; b < 4; ++b) {
    src.push_back(random_matrix(24, 10, 91 + b));
    bm.load(b, src[b]);
  }
  const auto s = rem::dsp::svd_batch(bm, arena, /*rank_limit=*/3);
  EXPECT_EQ(s.r_max, 3u);
  for (std::size_t b = 0; b < 4; ++b) {
    const auto want = rem::dsp::svd(src[b], 3);
    ASSERT_EQ(s.rank[b], want.sigma.size());
    for (std::size_t p = 0; p < s.rank[b]; ++p)
      EXPECT_NEAR(s.sigma[b * s.r_max + p], want.sigma[p], 1e-10);
    EXPECT_LT(
        Matrix::max_abs_diff(reconstruct(s, b, s.rank[b]), want.reconstruct()),
        1e-10);
  }
}

TEST(SvdBatch, RejectsEmptyMatrices) {
  Arena arena;
  BatchMatrix bm;  // default: 0 x 0 x 0
  EXPECT_THROW(rem::dsp::svd_batch(bm, arena), std::invalid_argument);
}

rem::crossband::CrossbandInput make_input(std::size_t m, std::size_t n,
                                          unsigned seed) {
  rem::crossband::CrossbandInput in;
  in.h1_dd = random_matrix(m, n, seed);
  in.h1_tf = Matrix(m, n);
  in.num = rem::phy::Numerology::lte(m, n);
  in.f1_hz = 1.88e9;
  in.f2_hz = 2.6e9;
  return in;
}

TEST(EstimateBatch, MatchesSinglesLoop) {
  std::vector<rem::crossband::CrossbandInput> inputs;
  for (unsigned i = 0; i < 6; ++i) inputs.push_back(make_input(32, 16, i));

  rem::crossband::RemSvdEstimator singles;
  std::vector<rem::crossband::CrossbandOutput> want;
  for (const auto& in : inputs) want.push_back(singles.estimate(in));

  rem::crossband::RemSvdEstimator batched;
  const auto got = batched.estimate_batch(inputs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i].is_delay_doppler);
    EXPECT_LT(Matrix::max_abs_diff(got[i].h2, want[i].h2), 1e-10) << i;
    EXPECT_NEAR(got[i].mean_gain, want[i].mean_gain,
                1e-10 * (1.0 + want[i].mean_gain))
        << i;
  }
  // last_paths() reflects the final input, like a trailing estimate() call.
  (void)singles.estimate(inputs.back());
  ASSERT_EQ(batched.last_paths().size(), singles.last_paths().size());
  for (std::size_t p = 0; p < batched.last_paths().size(); ++p) {
    EXPECT_NEAR(batched.last_paths()[p].delay_s,
                singles.last_paths()[p].delay_s, 1e-12);
    EXPECT_NEAR(batched.last_paths()[p].attenuation,
                singles.last_paths()[p].attenuation, 1e-10);
  }
}

TEST(EstimateBatch, RaggedShapesGroupedAndOrdered) {
  // Mixed shapes interleaved: the batch path must group by shape key yet
  // return outputs in input order, each matching its singles result.
  std::vector<rem::crossband::CrossbandInput> inputs;
  const Shape ragged[] = {{12, 14}, {64, 16}, {12, 14}, {37, 8},
                          {64, 16}, {12, 14}, {128, 64}};
  unsigned seed = 0;
  for (const auto& sh : ragged)
    inputs.push_back(make_input(sh.rows, sh.cols, 1000 + seed++));

  rem::crossband::RemSvdEstimator singles;
  rem::crossband::RemSvdEstimator batched;
  const auto got = batched.estimate_batch(inputs);
  ASSERT_EQ(got.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    const auto want = singles.estimate(inputs[i]);
    ASSERT_EQ(got[i].h2.rows(), want.h2.rows()) << i;
    EXPECT_LT(Matrix::max_abs_diff(got[i].h2, want.h2), 1e-10) << i;
  }
}

TEST(EstimateBatch, DeterministicAcrossThreadCounts) {
  std::vector<rem::crossband::CrossbandInput> inputs;
  for (unsigned i = 0; i < 13; ++i)
    inputs.push_back(make_input(i % 3 == 0 ? 12 : 32, i % 3 == 0 ? 14 : 16,
                                500 + i));

  std::vector<std::vector<rem::crossband::CrossbandOutput>> runs;
  for (std::size_t threads : {1u, 2u, 8u}) {
    rem::crossband::RemSvdConfig cfg;
    cfg.batch_threads = threads;
    rem::crossband::RemSvdEstimator est(cfg);
    runs.push_back(est.estimate_batch(inputs));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      // Bit-identical, not merely close: sharding must not change results.
      EXPECT_EQ(Matrix::max_abs_diff(runs[0][i].h2, runs[r][i].h2), 0.0)
          << "thread run " << r << " input " << i;
      EXPECT_EQ(runs[0][i].mean_gain, runs[r][i].mean_gain);
    }
  }
}

TEST(EstimateBatch, SteadyStateAllocationFree) {
  std::vector<rem::crossband::CrossbandInput> inputs;
  for (unsigned i = 0; i < 8; ++i) inputs.push_back(make_input(32, 16, 40 + i));

  rem::crossband::RemSvdEstimator est;
  // Warmup: call 1 grows the arena chunk by chunk; call 2's reset()
  // coalesces them into one high-water chunk (one final growth).
  auto out = est.estimate_batch(inputs);
  est.estimate_batch(inputs, out);
  const std::size_t grows_after_warmup = est.arena_grows();
  EXPECT_GT(grows_after_warmup, 0u);
  EXPECT_GT(est.arena_high_water(), 0u);
  for (int call = 0; call < 3; ++call) {
    est.estimate_batch(inputs, out);  // in-place: h2 storage reused too
    EXPECT_EQ(est.arena_grows(), grows_after_warmup) << "call " << call;
  }
}

TEST(EstimateBatch, EmptyInputRejectedWithContext) {
  std::vector<rem::crossband::CrossbandInput> inputs;
  inputs.push_back(make_input(12, 14, 1));
  inputs.push_back(rem::crossband::CrossbandInput{});  // empty h1_dd
  rem::crossband::RemSvdEstimator est;
  try {
    est.estimate_batch(inputs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("input 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("0x0"), std::string::npos) << msg;
  }
}

TEST(EstimateBatch, EmptySpanIsNoop) {
  rem::crossband::RemSvdEstimator est;
  EXPECT_TRUE(est.estimate_batch({}).empty());
}

TEST(ArenaStats, GrowOnlyOnColdPath) {
  Arena arena;
  (void)arena.alloc<double>(1000);
  const auto cold = arena.stats();
  EXPECT_EQ(cold.grow_count, 1u);
  arena.reset();
  for (int i = 0; i < 5; ++i) {
    (void)arena.alloc<double>(400);
    (void)arena.alloc<double>(600);
    arena.reset();
  }
  EXPECT_EQ(arena.stats().grow_count, cold.grow_count);
  EXPECT_EQ(arena.stats().reset_count, 6u);
}

}  // namespace
