// End-to-end integration: synthesize a scenario, run the full simulator
// with both managers, and check the paper's headline relationships hold.
#include "common/stats.hpp"
#include "core/legacy_manager.hpp"
#include "core/rem_manager.hpp"
#include "mobility/simplify.hpp"
#include "phy/bler_model.hpp"
#include "trace/scenario.hpp"

#include <gtest/gtest.h>

namespace rt = rem::trace;
namespace rs = rem::sim;
namespace rc = rem::core;
namespace rm = rem::mobility;

namespace {

struct RunResult {
  rs::SimStats legacy;
  rs::SimStats rem;
};

RunResult run_scenario(rt::Route route, double speed_kmh,
                       std::uint64_t seed, double duration_s = 1200.0) {
  const auto sc = rt::make_scenario(route, speed_kmh, duration_s);
  rem::common::Rng rng(seed);
  auto cells = rs::make_rail_deployment(sc.deployment, rng);
  auto holes = rs::make_hole_segments(sc.deployment, rng);
  rs::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = rt::synthesize_policies(cells, sc.policy_mix, rng);

  rem::phy::LogisticBlerModel bler;

  rc::LegacyConfig lc;
  lc.policies = policies;
  lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
  lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;
  rc::LegacyManager legacy(lc);
  rs::Simulator s1(env, sc.sim, bler, rng.fork());

  rc::RemManager remm(rc::RemConfig{}, rng.fork());
  rs::Simulator s2(env, sc.sim, bler, rng.fork());

  RunResult out;
  out.legacy = s1.run(legacy);
  out.rem = s2.run(remm);
  return out;
}

}  // namespace

TEST(Integration, HandoversHappenAtAllSpeeds) {
  for (double speed : {60.0, 250.0}) {
    const auto r = run_scenario(
        speed < 150 ? rt::Route::kLowMobilityLA
                    : rt::Route::kBeijingShanghai,
        speed, 11, 600.0);
    EXPECT_GT(r.legacy.handovers, 5) << speed;
    EXPECT_GT(r.rem.handovers, 5) << speed;
  }
}

TEST(Integration, HandoverIntervalShrinksWithSpeed) {
  const auto slow = run_scenario(rt::Route::kLowMobilityLA, 60.0, 13, 900.0);
  const auto fast =
      run_scenario(rt::Route::kBeijingShanghai, 330.0, 13, 900.0);
  ASSERT_GT(slow.legacy.avg_handover_interval_s, 0.0);
  ASSERT_GT(fast.legacy.avg_handover_interval_s, 0.0);
  EXPECT_GT(slow.legacy.avg_handover_interval_s,
            2.0 * fast.legacy.avg_handover_interval_s);
}

TEST(Integration, LegacyFailuresGrowWithSpeed) {
  // Aggregate two seeds to stabilize the ratio.
  double slow_ratio = 0.0, fast_ratio = 0.0;
  for (std::uint64_t seed : {17u, 18u}) {
    slow_ratio +=
        run_scenario(rt::Route::kLowMobilityLA, 60.0, seed).legacy
            .failure_ratio();
    fast_ratio +=
        run_scenario(rt::Route::kBeijingShanghai, 330.0, seed).legacy
            .failure_ratio();
  }
  EXPECT_GT(fast_ratio, slow_ratio);
}

TEST(Integration, RemReducesFailuresOnHsr) {
  int legacy_fail = 0, rem_fail = 0, legacy_den = 0, rem_den = 0;
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const auto r = run_scenario(rt::Route::kBeijingShanghai, 300.0, seed);
    legacy_fail += r.legacy.failures;
    rem_fail += r.rem.failures;
    legacy_den += r.legacy.failures + r.legacy.handovers;
    rem_den += r.rem.failures + r.rem.handovers;
  }
  const double lr = static_cast<double>(legacy_fail) / legacy_den;
  const double rr = static_cast<double>(rem_fail) / rem_den;
  EXPECT_LT(rr, lr * 0.7) << "legacy " << lr << " rem " << rr;
}

TEST(Integration, RemFailuresExcludingHolesNearZero) {
  int rem_non_hole = 0, rem_den = 0;
  for (std::uint64_t seed : {31u, 32u, 33u}) {
    const auto r = run_scenario(rt::Route::kBeijingShanghai, 250.0, seed);
    int holes = 0;
    const auto it =
        r.rem.failures_by_cause.find(rs::FailureCause::kCoverageHole);
    if (it != r.rem.failures_by_cause.end()) holes = it->second;
    rem_non_hole += r.rem.failures - holes;
    rem_den += r.rem.failures + r.rem.handovers;
  }
  EXPECT_LT(static_cast<double>(rem_non_hole) / rem_den, 0.02);
}

TEST(Integration, RemEliminatesConflictLoops) {
  const auto sc = rt::make_scenario(rt::Route::kBeijingTaiyuan, 250.0, 900.0);
  rem::common::Rng rng(41);
  auto cells = rs::make_rail_deployment(sc.deployment, rng);
  auto holes = rs::make_hole_segments(sc.deployment, rng);
  rs::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = rt::synthesize_policies(cells, sc.policy_mix, rng);
  rem::phy::LogisticBlerModel bler;

  // Exact pairwise conflict predicate over the synthesized policies.
  const auto policy_cells = rt::to_policy_cells(cells, policies);
  const auto conflicts = rm::find_two_cell_conflicts(policy_cells);
  std::set<std::pair<int, int>> conflict_pairs;
  for (const auto& c : conflicts) {
    conflict_pairs.insert({c.cell_i, c.cell_j});
    conflict_pairs.insert({c.cell_j, c.cell_i});
  }
  const auto pair_fn = [&](int a, int b) {
    return conflict_pairs.count({a, b}) > 0;
  };

  rc::LegacyConfig lc;
  lc.policies = policies;
  rc::LegacyManager legacy(lc);
  rs::Simulator s1(env, sc.sim, bler, rng.fork());
  const auto legacy_stats = s1.run(legacy, pair_fn);

  // REM's simplified policies are conflict-free (Theorem 2), so its
  // conflict predicate is empty by construction.
  rc::RemManager remm(rc::RemConfig{}, rng.fork());
  rs::Simulator s2(env, sc.sim, bler, rng.fork());
  const auto rem_stats = s2.run(remm, [](int, int) { return false; });

  EXPECT_GT(legacy_stats.conflict_loop_episodes, 0);
  EXPECT_EQ(rem_stats.conflict_loop_episodes, 0);
}

TEST(Integration, SynthesizedPoliciesConflictAtPaperScale) {
  const auto sc = rt::make_scenario(rt::Route::kBeijingShanghai, 300.0);
  rem::common::Rng rng(51);
  auto cells = rs::make_rail_deployment(sc.deployment, rng);
  auto policies = rt::synthesize_policies(cells, sc.policy_mix, rng);
  const auto conflicts =
      rm::find_two_cell_conflicts(rt::to_policy_cells(cells, policies));
  EXPECT_GT(conflicts.size(), 0u);
  // A3-A3 should be a major class (Table 3: 55.9% on Beijing-Shanghai).
  const auto hist = rm::conflict_histogram(conflicts);
  const auto it = hist.find("A3-A3");
  ASSERT_NE(it, hist.end());
  EXPECT_GT(it->second, 0);
}

TEST(Integration, SimplifiedPoliciesPassTheorem2) {
  const auto sc = rt::make_scenario(rt::Route::kBeijingTaiyuan, 250.0);
  rem::common::Rng rng(61);
  auto cells = rs::make_rail_deployment(sc.deployment, rng);
  auto policies = rt::synthesize_policies(cells, sc.policy_mix, rng);
  auto pcs = rt::to_policy_cells(cells, policies);
  for (auto& pc : pcs) pc.policy = rm::simplify_policy(pc.policy);
  rm::coordinate_offsets(pcs);
  EXPECT_TRUE(rm::find_two_cell_conflicts(pcs).empty());
}

TEST(Integration, FeedbackDelaysRecorded) {
  const auto r = run_scenario(rt::Route::kBeijingShanghai, 300.0, 71, 600.0);
  ASSERT_FALSE(r.legacy.feedback_delays_s.empty());
  ASSERT_FALSE(r.rem.feedback_delays_s.empty());
  rem::common::Summary lg, rm_;
  lg.add_all(r.legacy.feedback_delays_s);
  rm_.add_all(r.rem.feedback_delays_s);
  EXPECT_GT(lg.mean(), rm_.mean());
}
