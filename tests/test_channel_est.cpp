#include "channel/multipath.hpp"
#include "channel/profiles.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "phy/channel_est.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rp = rem::phy;
namespace rch = rem::channel;
using rem::dsp::Matrix;
using rem::dsp::cd;

namespace {
// CP long enough to absorb every profile's delay spread so the analytic
// Eq. 5 model (with CP correction) matches the simulated CP-OFDM chain.
rp::Numerology with_cp(std::size_t m, std::size_t n) {
  rp::Numerology num;
  num.num_subcarriers = m;
  num.num_symbols = n;
  num.subcarrier_spacing_hz = 15e3;
  num.cp_len = m / 4;
  return num;
}

Matrix analytic_dd(const rch::MultipathChannel& ch,
                   const rp::Numerology& num) {
  return ch.dd_matrix(num.num_subcarriers, num.num_symbols,
                      num.subcarrier_spacing_hz, num.symbol_duration_s(),
                      num.cp_len);
}
}  // namespace

TEST(DdEstimator, NoiselessMatchesAnalyticOnGridPath) {
  const auto num = with_cp(16, 8);
  rch::Path p;
  p.gain = cd(0.9, 0.1);
  p.delay_s = 2.0 * num.delay_res_s();
  p.doppler_hz = 1.0 * num.doppler_res_hz();
  rch::MultipathChannel ch({p});

  rp::DdChannelEstimator est(num);
  const auto e = est.estimate_noiseless(ch);
  const auto analytic = analytic_dd(ch, num);
  EXPECT_LT(Matrix::max_abs_diff(e.h, analytic), 0.05);
  // Peak lands on the right bin with ~the path gain.
  EXPECT_LT(std::abs(std::abs(e.h(2, 1)) - std::abs(p.gain)), 0.1);
}

TEST(DdEstimator, NoiselessMatchesAnalyticMultipath) {
  const auto num = with_cp(32, 16);
  rem::common::Rng rng(3);
  rch::ChannelDrawConfig cfg;
  cfg.profile = rch::Profile::kEVA;
  cfg.speed_mps = rem::common::kmh_to_mps(120);
  cfg.carrier_hz = 2.0e9;
  const auto ch = rch::draw_channel(cfg, rng);

  rp::DdChannelEstimator est(num);
  const auto e = est.estimate_noiseless(ch);
  const auto analytic = analytic_dd(ch, num);
  const double rel = (e.h - analytic).frobenius_norm() /
                     analytic.frobenius_norm();
  // Off-grid delays/Dopplers leak across bins and interact with
  // intra-symbol ICI that the separable Eq. 5 model cannot represent;
  // ~6% residual is the model's accuracy limit (on-grid paths match to
  // machine precision, see the other tests).
  EXPECT_LT(rel, 0.10);
}

TEST(DdEstimator, NoisyEstimateIsClose) {
  const auto num = with_cp(32, 16);
  rem::common::Rng rng(5);
  rch::ChannelDrawConfig cfg;
  cfg.profile = rch::Profile::kHST350;
  cfg.speed_mps = rem::common::kmh_to_mps(350);
  cfg.carrier_hz = 2.1e9;
  const auto ch = rch::draw_channel(cfg, rng);

  rp::DdChannelEstimator est(num);
  const auto noiseless = est.estimate_noiseless(ch);
  const auto noisy = est.estimate(ch, 20.0, rng);
  const double rel = (noisy.h - noiseless.h).frobenius_norm() /
                     noiseless.h.frobenius_norm();
  EXPECT_LT(rel, 0.3);
  EXPECT_GT(noisy.noise_power, 0.0);
}

TEST(DdEstimator, MeanChannelGainMatchesUnitPower) {
  // Normalized channel: mean per-RE gain ~= 1 (Parseval through the DD
  // samples).
  const auto num = with_cp(32, 16);
  rem::common::Rng rng(7);
  rch::ChannelDrawConfig cfg;
  cfg.profile = rch::Profile::kEVA;
  cfg.speed_mps = rem::common::kmh_to_mps(60);
  cfg.carrier_hz = 2.0e9;
  double total = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    const auto ch = rch::draw_channel(cfg, rng);
    rp::DdChannelEstimator est(num);
    total += rp::mean_channel_gain(est.estimate_noiseless(ch).h);
  }
  EXPECT_NEAR(total / trials, 1.0, 0.15);
}

TEST(DdEstimator, SnrFromDd) {
  Matrix h(4, 4);
  h(0, 0) = cd(1, 0);  // gain 1 concentrated in one bin
  EXPECT_NEAR(rp::snr_db_from_dd(h, 1.0, 0.1), 10.0, 1e-9);
  EXPECT_NEAR(rp::snr_db_from_dd(h, 2.0, 0.1), 13.01, 0.01);
}

TEST(DdEstimator, DopplerShiftMovesDopplerBin) {
  const auto num = with_cp(16, 16);
  const double dnu = num.doppler_res_hz();
  for (int l0 : {1, 3, 6}) {
    rch::Path p;
    p.gain = cd(1, 0);
    p.doppler_hz = static_cast<double>(l0) * dnu;
    rch::MultipathChannel ch({p});
    rp::DdChannelEstimator est(num);
    const auto e = est.estimate_noiseless(ch);
    // Find the strongest bin; it must be (0, l0).
    std::size_t bk = 0, bl = 0;
    double best = -1;
    for (std::size_t k = 0; k < 16; ++k)
      for (std::size_t l = 0; l < 16; ++l)
        if (std::abs(e.h(k, l)) > best) {
          best = std::abs(e.h(k, l));
          bk = k;
          bl = l;
        }
    EXPECT_EQ(bk, 0u) << "l0=" << l0;
    EXPECT_EQ(bl, static_cast<std::size_t>(l0)) << "l0=" << l0;
  }
}

TEST(DdEstimator, DelayShiftMovesDelayBin) {
  const auto num = with_cp(16, 8);
  const double dtau = num.delay_res_s();
  for (int k0 : {1, 2, 3}) {  // stay within the CP (cp_len = 4)
    rch::Path p;
    p.gain = cd(1, 0);
    p.delay_s = static_cast<double>(k0) * dtau;
    rch::MultipathChannel ch({p});
    rp::DdChannelEstimator est(num);
    const auto e = est.estimate_noiseless(ch);
    std::size_t bk = 0, bl = 0;
    double best = -1;
    for (std::size_t k = 0; k < 16; ++k)
      for (std::size_t l = 0; l < 8; ++l)
        if (std::abs(e.h(k, l)) > best) {
          best = std::abs(e.h(k, l));
          bk = k;
          bl = l;
        }
    EXPECT_EQ(bk, static_cast<std::size_t>(k0)) << "k0=" << k0;
    EXPECT_EQ(bl, 0u) << "k0=" << k0;
  }
}
