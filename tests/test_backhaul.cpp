// rem::net backhaul transport: wire-codec round trips and pinned
// malformed-frame rejections, a seeded corruption fuzz over the decoder
// (never crash, never silently accept garbage), SequenceTracker
// idempotency, BackhaulConfig validation, deterministic delivery under
// loss/reorder/duplication/partition, and the simulator-level preparation
// FSM behavior the transport enables (prep before command, retries under
// loss, fallback/failure under partition, and bit-identical runs).
#include "net/backhaul.hpp"
#include "net/message.hpp"
#include "scenario_runner.hpp"
#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

namespace rn = rem::net;
namespace rs = rem::sim;

namespace {

rn::BackhaulMessage sample_message() {
  rn::BackhaulMessage m;
  m.seq = 0x0123456789abcdefull;
  m.type = rn::MsgType::kHandoverAck;
  m.src_cell = 7;
  m.dst_cell = 12;
  m.target_cell = 12;
  m.payload = -93.25;
  return m;
}

}  // namespace

// ---------- Wire codec ----------

TEST(BackhaulCodec, RoundTripsEveryTypeAndFieldExactly) {
  for (int t = 1; t <= static_cast<int>(rn::kNumMsgTypes); ++t) {
    rn::BackhaulMessage m = sample_message();
    m.type = static_cast<rn::MsgType>(t);
    m.seq = static_cast<std::uint64_t>(t) << 40;
    m.src_cell = t - 2;  // exercises -1 and small indices
    m.payload = t * 1.5e-3;
    const auto frame = rn::encode_message(m);
    ASSERT_EQ(frame.size(), rn::kFrameSize);
    const auto back = rn::decode_message(frame);
    EXPECT_EQ(back.seq, m.seq);
    EXPECT_EQ(back.type, m.type);
    EXPECT_EQ(back.src_cell, m.src_cell);
    EXPECT_EQ(back.dst_cell, m.dst_cell);
    EXPECT_EQ(back.target_cell, m.target_cell);
    EXPECT_EQ(back.payload, m.payload);
  }
}

TEST(BackhaulCodec, PayloadBitsSurviveIncludingNonFinite) {
  for (const double p : {0.0, -0.0, 1e-300, -1e300,
                         std::numeric_limits<double>::infinity()}) {
    rn::BackhaulMessage m = sample_message();
    m.payload = p;
    const auto back = rn::decode_message(rn::encode_message(m));
    std::uint64_t a, b;
    std::memcpy(&a, &m.payload, sizeof(a));
    std::memcpy(&b, &back.payload, sizeof(b));
    EXPECT_EQ(a, b);
  }
}

TEST(BackhaulCodec, PinnedMalformedFramesRejectWithContext) {
  const auto frame = rn::encode_message(sample_message());
  const auto reject = [](std::vector<std::uint8_t> f,
                         const std::string& needle) {
    try {
      rn::decode_message(f);
      ADD_FAILURE() << "frame accepted; expected rejection on " << needle;
    } catch (const std::runtime_error& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("backhaul frame"), std::string::npos) << msg;
      EXPECT_NE(msg.find(needle), std::string::npos) << msg;
    }
  };

  reject({}, "length");                                  // empty
  reject({frame.begin(), frame.begin() + 35}, "length"); // truncated
  auto longer = frame;
  longer.push_back(0);
  reject(longer, "length");                              // trailing junk

  auto bad_magic = frame;
  bad_magic[0] ^= 0xff;
  reject(bad_magic, "magic");

  auto bad_version = frame;
  bad_version[2] = 9;
  // Version bumps re-checksum cleanly in a real sender; a decoder seeing a
  // foreign version must say so before checksum noise confuses the story.
  reject(bad_version, "version");

  auto bad_checksum = frame;
  bad_checksum[rn::kFrameSize - 1] ^= 0x01;
  reject(bad_checksum, "checksum");
  auto flipped_body = frame;
  flipped_body[10] ^= 0x40;  // inside seq; checksum must catch it
  reject(flipped_body, "checksum");
}

TEST(BackhaulCodec, RejectsUnknownTypeAndBadCellsPastChecksum) {
  // Re-checksummed frames isolate the field checks from the checksum one.
  const auto rebuild = [](rn::BackhaulMessage m) {
    return rn::encode_message(m);
  };
  rn::BackhaulMessage m = sample_message();
  m.src_cell = -2;
  try {
    rn::decode_message(rebuild(m));
    ADD_FAILURE() << "cell index -2 accepted";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cell"), std::string::npos)
        << e.what();
  }
  // Type is validated inside decode, so a hand-corrupted type byte with a
  // fixed-up checksum must still be rejected.
  auto frame = rebuild(sample_message());
  frame[3] = 0;  // type slot
  try {
    rn::decode_message(frame);
    ADD_FAILURE() << "type 0 accepted";
  } catch (const std::runtime_error& e) {
    // Either the checksum or the type check fires; both are rejections
    // with context, and neither may crash.
    EXPECT_NE(std::string(e.what()).find("backhaul frame"),
              std::string::npos);
  }
}

TEST(BackhaulCodec, SeededCorruptionFuzzNeverCrashes) {
  rem::common::Rng rng(20260806);
  const auto base = rn::encode_message(sample_message());
  int rejected = 0, accepted = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    auto f = base;
    // Corrupt 1..6 random bytes (bit flips or full rewrites), sometimes
    // truncate or extend.
    const int edits = static_cast<int>(rng.uniform_int(1, 6));
    for (int e = 0; e < edits; ++e) {
      const auto i =
          static_cast<std::size_t>(rng.uniform_int(0, rn::kFrameSize - 1));
      if (rng.bernoulli(0.5))
        f[i] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      else
        f[i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    if (rng.bernoulli(0.1))
      f.resize(static_cast<std::size_t>(rng.uniform_int(0, rn::kFrameSize)));
    try {
      const auto m = rn::decode_message(f);
      // Survivors must be internally valid (the corruption was a no-op or
      // an astronomically unlikely checksum collision on valid fields).
      EXPECT_GE(static_cast<int>(m.type), 1);
      EXPECT_LE(static_cast<int>(m.type),
                static_cast<int>(rn::kNumMsgTypes));
      EXPECT_GE(m.src_cell, -1);
      EXPECT_GE(m.dst_cell, -1);
      EXPECT_GE(m.target_cell, -1);
      ++accepted;
    } catch (const std::runtime_error&) {
      ++rejected;
    }
  }
  // The checksum must be doing real work: the overwhelming majority of
  // corruptions are rejected, and the no-op survivors are a handful.
  EXPECT_GT(rejected, 4500);
  EXPECT_LT(accepted, 500);
}

TEST(BackhaulCodec, RandomGarbageFramesAlwaysReject) {
  rem::common::Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> f(
        static_cast<std::size_t>(rng.uniform_int(0, 64)));
    for (auto& b : f) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    EXPECT_THROW(rn::decode_message(f), std::runtime_error);
  }
}

// ---------- SequenceTracker ----------

TEST(SequenceTracker, AcceptsOnceAndCountsDuplicates) {
  rn::SequenceTracker t;
  EXPECT_TRUE(t.accept(5));
  EXPECT_FALSE(t.accept(5));
  EXPECT_FALSE(t.accept(5));
  EXPECT_TRUE(t.accept(6));
  EXPECT_TRUE(t.accept(1));  // out-of-order first sighting still accepted
  EXPECT_FALSE(t.accept(1));
  EXPECT_TRUE(t.seen(5) && t.seen(6) && t.seen(1));
  EXPECT_FALSE(t.seen(2));
  EXPECT_EQ(t.duplicates(), 3u);
}

// ---------- Config validation ----------

TEST(BackhaulConfig, RejectsInvalidFieldsWithContext) {
  const auto build = [](void (*tweak)(rn::BackhaulConfig&)) {
    rn::BackhaulConfig cfg;
    tweak(cfg);
    rn::BackhaulNetwork net(cfg, rem::common::Rng(1));
  };
  EXPECT_NO_THROW(build([](rn::BackhaulConfig&) {}));
  const auto expect_reject = [&](void (*tweak)(rn::BackhaulConfig&),
                                 const std::string& field) {
    try {
      build(tweak);
      ADD_FAILURE() << "config accepted; expected rejection on " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  expect_reject([](rn::BackhaulConfig& c) { c.base_latency_s = 0.0; },
                "base_latency_s");
  expect_reject([](rn::BackhaulConfig& c) { c.jitter_s = -0.001; },
                "jitter_s");
  expect_reject([](rn::BackhaulConfig& c) { c.loss_prob = 1.5; },
                "loss_prob");
  expect_reject([](rn::BackhaulConfig& c) { c.reorder_prob = -0.1; },
                "reorder_prob");
  expect_reject([](rn::BackhaulConfig& c) { c.reorder_extra_s = -1.0; },
                "reorder_extra_s");
  expect_reject([](rn::BackhaulConfig& c) { c.duplicate_prob = 2.0; },
                "duplicate_prob");
  expect_reject([](rn::BackhaulConfig& c) { c.queue_capacity = 0; },
                "queue_capacity");
}

// ---------- Transport semantics ----------

TEST(BackhaulNetwork, DeliversInOrderWithBoundedLatency) {
  rn::BackhaulConfig cfg;
  cfg.base_latency_s = 0.004;
  cfg.jitter_s = 0.002;
  rn::BackhaulNetwork net(cfg, rem::common::Rng(3));
  for (std::uint64_t s = 1; s <= 20; ++s) {
    rn::BackhaulMessage m = sample_message();
    m.seq = s;
    ASSERT_TRUE(net.send(0.01 * s, m));
  }
  std::uint64_t last_seq = 0;
  double t = 0.0;
  std::size_t delivered = 0;
  while (delivered < 20 && t < 2.0) {
    t += 0.001;
    for (const auto& m : net.poll(t)) {
      // 10 ms spacing > max jitter, so order is preserved.
      EXPECT_GT(m.seq, last_seq);
      last_seq = m.seq;
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 20u);
  const auto& st = net.stats();
  EXPECT_EQ(st.sent, 20u);
  EXPECT_EQ(st.delivered, 20u);
  EXPECT_EQ(st.dropped_loss + st.dropped_partition + st.dropped_queue, 0u);
  EXPECT_GE(st.latency_sum_s, 20 * cfg.base_latency_s);
  EXPECT_LE(st.latency_sum_s, 20 * (cfg.base_latency_s + cfg.jitter_s));
}

TEST(BackhaulNetwork, SameSeedReplaysIdenticalTimeline) {
  rn::BackhaulConfig cfg;
  cfg.jitter_s = 0.003;
  cfg.loss_prob = 0.2;
  cfg.reorder_prob = 0.3;
  cfg.reorder_extra_s = 0.006;
  cfg.duplicate_prob = 0.2;
  const auto run = [&](std::uint64_t seed) {
    rn::BackhaulNetwork net(cfg, rem::common::Rng(seed));
    std::vector<std::pair<double, std::uint64_t>> timeline;
    for (int i = 0; i < 200; ++i) {
      rn::BackhaulMessage m = sample_message();
      m.seq = static_cast<std::uint64_t>(i) + 1;
      net.send(0.002 * i, m);
      for (const auto& d : net.poll(0.002 * i))
        timeline.emplace_back(0.002 * i, d.seq);
    }
    for (const auto& d : net.poll(10.0)) timeline.emplace_back(10.0, d.seq);
    return timeline;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(BackhaulNetwork, LossPartitionQueueAndDuplicationAccounting) {
  // Certain loss drops everything.
  {
    rn::BackhaulConfig cfg;
    cfg.loss_prob = 1.0;
    rn::BackhaulNetwork net(cfg, rem::common::Rng(1));
    EXPECT_FALSE(net.send(0.0, sample_message()));
    EXPECT_TRUE(net.poll(1.0).empty());
    EXPECT_EQ(net.stats().dropped_loss, 1u);
  }
  // Partition drops without consuming randomness: a message sent through a
  // partition must not shift the delay sequence of later sends.
  {
    rn::BackhaulConfig cfg;
    cfg.jitter_s = 0.002;
    rn::BackhaulNetwork with_partition(cfg, rem::common::Rng(9));
    rn::BackhaulNetwork without(cfg, rem::common::Rng(9));
    EXPECT_FALSE(with_partition.send(0.0, sample_message(), 0.0, 0.0,
                                     /*partitioned=*/true));
    EXPECT_EQ(with_partition.stats().dropped_partition, 1u);
    ASSERT_TRUE(with_partition.send(0.1, sample_message()));
    ASSERT_TRUE(without.send(0.1, sample_message()));
    auto a = with_partition.poll(1.0);
    auto b = without.poll(1.0);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    EXPECT_EQ(with_partition.stats().latency_sum_s,
              without.stats().latency_sum_s);
  }
  // A full queue rejects overload instead of growing without bound.
  {
    rn::BackhaulConfig cfg;
    cfg.queue_capacity = 2;
    rn::BackhaulNetwork net(cfg, rem::common::Rng(1));
    EXPECT_TRUE(net.send(0.0, sample_message()));
    EXPECT_TRUE(net.send(0.0, sample_message()));
    EXPECT_FALSE(net.send(0.0, sample_message()));
    EXPECT_EQ(net.stats().dropped_queue, 1u);
    EXPECT_EQ(net.in_flight(), 2u);
  }
  // Certain duplication delivers two copies of each frame.
  {
    rn::BackhaulConfig cfg;
    cfg.duplicate_prob = 1.0;
    rn::BackhaulNetwork net(cfg, rem::common::Rng(1));
    EXPECT_TRUE(net.send(0.0, sample_message()));
    EXPECT_EQ(net.poll(1.0).size(), 2u);
    EXPECT_EQ(net.stats().duplicated, 1u);
    EXPECT_EQ(net.stats().delivered, 2u);
  }
}

TEST(BackhaulNetwork, PollReturnsDueFramesInDeliveryOrder) {
  rn::BackhaulConfig cfg;
  cfg.base_latency_s = 0.004;
  cfg.reorder_prob = 1.0;   // every frame gets an extra delay draw
  cfg.reorder_extra_s = 0.050;
  rn::BackhaulNetwork net(cfg, rem::common::Rng(5));
  for (std::uint64_t s = 1; s <= 50; ++s) {
    rn::BackhaulMessage m = sample_message();
    m.seq = s;
    ASSERT_TRUE(net.send(0.0, m));
  }
  const auto out = net.poll(1.0);
  ASSERT_EQ(out.size(), 50u);
  EXPECT_EQ(net.stats().reordered, 50u);
  // Sequence order was scrambled by the random extra delays...
  bool scrambled = false;
  for (std::size_t i = 1; i < out.size(); ++i)
    if (out[i].seq < out[i - 1].seq) scrambled = true;
  EXPECT_TRUE(scrambled);
}

// ---------- Simulator-level preparation FSM ----------

namespace {

rem::bench::SeedRunResult run_scenario(const rs::FaultConfig& faults,
                                       double duration_s = 80.0,
                                       bool backhaul_enabled = true) {
  rem::phy::LogisticBlerModel bler;
  rem::bench::SeedRunOptions opts;
  opts.faults = faults;
  if (!backhaul_enabled) {
    rn::BackhaulConfig off;
    off.enabled = false;
    opts.backhaul = off;
  }
  return rem::bench::run_seed(rem::trace::Route::kBeijingShanghai, 300.0,
                              duration_s, 1, true, bler, opts);
}

}  // namespace

TEST(BackhaulFsm, EveryHandoverIsPreparedOverTheTransport) {
  const auto r = run_scenario({});
  ASSERT_GT(r.rem.handovers, 0);
  EXPECT_GT(r.rem.prep_requests, 0);
  EXPECT_GE(r.rem.prep_acks, r.rem.handovers);
  EXPECT_EQ(r.rem.prep_failures, 0);
  EXPECT_GT(r.rem.backhaul_sent, 0u);
  // Request->ack round trips respect the 2x one-way floor on average too.
  ASSERT_GT(r.rem.prep_acks, 0);
  EXPECT_GE(r.rem.prep_rtt_sum_s / r.rem.prep_acks,
            2.0 * rn::BackhaulConfig{}.base_latency_s);
}

TEST(BackhaulFsm, DisabledTransportRunsTheDirectPath) {
  const auto r = run_scenario({}, 80.0, /*backhaul_enabled=*/false);
  ASSERT_GT(r.rem.handovers, 0);
  EXPECT_EQ(r.rem.prep_requests, 0);
  EXPECT_EQ(r.rem.prep_acks, 0);
  EXPECT_EQ(r.rem.backhaul_sent, 0u);
}

TEST(BackhaulFsm, LossTriggersRetriesNotFailures) {
  rs::FaultConfig faults;
  faults.windows = {{rs::FaultKind::kBackhaulLoss, 5.0, 70.0, 0.35}};
  const auto r = run_scenario(faults);
  EXPECT_GT(r.rem.prep_retries + r.legacy.prep_retries, 0);
  EXPECT_EQ(r.rem.prep_failures, 0);
  EXPECT_GT(r.rem.backhaul_dropped_loss + r.legacy.backhaul_dropped_loss,
            0u);
}

TEST(BackhaulFsm, PartitionExhaustsRetriesIntoFallbackOrFailure) {
  // One long partition covering most of the run: preparations inside it
  // must exhaust their backoff budget and take the fallback/failure path;
  // the run itself must stay invariant-clean (run_seed throws otherwise).
  rs::FaultConfig faults;
  faults.windows = {{rs::FaultKind::kBackhaulPartition, 10.0, 60.0, 1.0}};
  const auto r = run_scenario(faults);
  EXPECT_GT(r.rem.backhaul_dropped_partition +
                r.legacy.backhaul_dropped_partition,
            0u);
  EXPECT_GT(r.rem.prep_fallbacks + r.rem.prep_failures +
                r.legacy.prep_fallbacks + r.legacy.prep_failures,
            0);
  // Retry budgets hold even while the link is down.
  const int budget = rs::SimConfig{}.prep_max_retries;
  EXPECT_LE(r.rem.prep_retries,
            (r.rem.prep_requests + r.rem.prep_fallbacks) * budget);
}

TEST(BackhaulFsm, DelaySpikesStretchRttWithoutFailures) {
  rs::FaultConfig faults;
  faults.windows = {{rs::FaultKind::kBackhaulDelay, 5.0, 70.0, 0.025}};
  const auto spiked = run_scenario(faults);
  const auto calm = run_scenario({});
  ASSERT_GT(spiked.rem.prep_acks, 0);
  ASSERT_GT(calm.rem.prep_acks, 0);
  EXPECT_GT(spiked.rem.prep_rtt_sum_s / spiked.rem.prep_acks,
            calm.rem.prep_rtt_sum_s / calm.rem.prep_acks);
  EXPECT_EQ(spiked.rem.prep_failures, 0);
}

TEST(BackhaulFsm, RunsAreBitIdenticalWithTransportEnabled) {
  const auto a = run_scenario({});
  const auto b = run_scenario({});
  EXPECT_EQ(a.rem.prep_requests, b.rem.prep_requests);
  EXPECT_EQ(a.rem.prep_retries, b.rem.prep_retries);
  EXPECT_EQ(a.rem.prep_acks, b.rem.prep_acks);
  EXPECT_EQ(a.rem.prep_rtt_sum_s, b.rem.prep_rtt_sum_s);
  EXPECT_EQ(a.rem.backhaul_sent, b.rem.backhaul_sent);
  EXPECT_EQ(a.rem.backhaul_delivered, b.rem.backhaul_delivered);
  EXPECT_EQ(a.rem.backhaul_latency_sum_s, b.rem.backhaul_latency_sum_s);
  EXPECT_EQ(a.rem.handovers, b.rem.handovers);
  EXPECT_EQ(a.rem.failures, b.rem.failures);
}
