#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace rc = rem::common;

TEST(Units, DbRoundTrip) {
  for (double db : {-30.0, -3.0, 0.0, 3.0, 10.0, 20.0}) {
    EXPECT_NEAR(rc::lin_to_db(rc::db_to_lin(db)), db, 1e-12);
  }
}

TEST(Units, DbmWatt) {
  EXPECT_NEAR(rc::dbm_to_watt(0.0), 1e-3, 1e-12);
  EXPECT_NEAR(rc::dbm_to_watt(30.0), 1.0, 1e-12);
  EXPECT_NEAR(rc::watt_to_dbm(1e-3), 0.0, 1e-9);
}

TEST(Units, SpeedConversions) {
  EXPECT_NEAR(rc::kmh_to_mps(360.0), 100.0, 1e-12);
  EXPECT_NEAR(rc::mps_to_kmh(100.0), 360.0, 1e-12);
}

TEST(Units, DopplerMatchesPaperNumbers) {
  // §2: Tc ≈ 20 ms for a vehicle at 60 km/h under 900 MHz.
  const double tc =
      rc::coherence_time_s(rc::kmh_to_mps(60.0), 900e6);
  EXPECT_NEAR(tc * 1e3, 20.0, 1.0);
  // §3.1: Tc in [1.16 ms, 6.18 ms] for f in [874.2, 2665] MHz and
  // v in [200, 350] km/h.
  const double tc_min =
      rc::coherence_time_s(rc::kmh_to_mps(350.0), 2665e6);
  const double tc_max =
      rc::coherence_time_s(rc::kmh_to_mps(200.0), 874.2e6);
  EXPECT_NEAR(tc_min * 1e3, 1.16, 0.05);
  EXPECT_NEAR(tc_max * 1e3, 6.18, 0.05);
}

TEST(Units, StaticClientHasInfiniteCoherence) {
  EXPECT_TRUE(std::isinf(rc::coherence_time_s(0.0, 2e9)));
}

TEST(Units, ShannonCapacity) {
  EXPECT_NEAR(rc::shannon_capacity_bps(1.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(rc::shannon_capacity_bps(20e6, 3.0), 40e6, 1.0);
}

TEST(Rng, Deterministic) {
  rc::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
}

TEST(Rng, ComplexGaussianVariance) {
  rc::Rng rng(7);
  double p = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) p += std::norm(rng.complex_gaussian(2.0));
  EXPECT_NEAR(p / n, 2.0, 0.1);
}

TEST(Rng, ForkIndependence) {
  rc::Rng a(1);
  rc::Rng child = a.fork();
  // Child stream differs from parent's continued stream.
  EXPECT_NE(child.uniform(0, 1), a.uniform(0, 1));
}

TEST(Rng, BernoulliRate) {
  rc::Rng rng(3);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Summary, BasicStats) {
  rc::Summary s;
  s.add_all({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(Summary, PercentileInterpolation) {
  rc::Summary s;
  s.add_all({0, 10});
  EXPECT_DOUBLE_EQ(s.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10.0);
}

TEST(Summary, CdfAt) {
  rc::Summary s;
  s.add_all({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(Summary, EmpiricalCdfMonotone) {
  std::vector<double> xs;
  rc::Rng rng(9);
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.gaussian());
  const auto cdf = rc::empirical_cdf(xs, 20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].fraction, cdf[i].fraction);
    EXPECT_LT(cdf[i - 1].value, cdf[i].value);
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(Summary, EmptyInputs) {
  rc::Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_THROW(s.percentile(50), std::runtime_error);
  EXPECT_TRUE(rc::empirical_cdf({}, 10).empty());
}

TEST(ThreadPool, RunsAllSubmittedJobs) {
  std::atomic<int> count{0};
  {
    rc::ThreadPool pool(4);
    for (int i = 0; i < 100; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    rc::ThreadPool pool(2);
    for (int i = 0; i < 50; ++i)
      pool.submit([&count] { count.fetch_add(1); });
    // No wait_idle: join-on-destruction must still run everything queued.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 257;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  rc::parallel_for(n, 8, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, SerialFallbackRunsOnCallingThread) {
  const auto caller = std::this_thread::get_id();
  rc::parallel_for(4, 1, [&caller](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelFor, PropagatesFirstException) {
  std::atomic<int> completed{0};
  EXPECT_THROW(
      rc::parallel_for(16, 4,
                       [&completed](std::size_t i) {
                         if (i == 5) throw std::runtime_error("boom");
                         completed.fetch_add(1);
                       }),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 15);  // all non-throwing indices still ran
}

TEST(ParallelFor, ZeroItemsIsNoop) {
  rc::parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ZeroThreadsMeansHardwareDefault) {
  rc::ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), rc::ThreadPool::default_threads());
  EXPECT_GE(rc::ThreadPool::default_threads(), 1u);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i) pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, SingleWorkerRunsJobsOffTheCallingThread) {
  rc::ThreadPool pool(1);
  ASSERT_EQ(pool.num_threads(), 1u);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> ran{0};
  std::thread::id worker;
  for (int i = 0; i < 4; ++i)
    pool.submit([&] {
      worker = std::this_thread::get_id();
      ran.fetch_add(1);
    });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 4);
  EXPECT_NE(worker, caller);
}

TEST(ParallelFor, SingleItemDegradesToSerial) {
  const auto caller = std::this_thread::get_id();
  int calls = 0;
  rc::parallel_for(1, 8, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SerialPathPropagatesFirstException) {
  // num_threads == 1 takes the plain-loop path; it must match the pool
  // path's contract — finish the remaining indices, then rethrow the
  // first failure.
  int completed = 0;
  try {
    rc::parallel_for(8, 1, [&completed](std::size_t i) {
      if (i == 2 || i == 5) throw std::invalid_argument("boom " +
                                                        std::to_string(i));
      ++completed;
    });
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "boom 2");  // first, not last
  }
  EXPECT_EQ(completed, 6);
}
