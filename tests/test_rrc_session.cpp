#include "channel/profiles.hpp"
#include "common/units.hpp"
#include "core/rrc_session.hpp"
#include "crossband/mimo.hpp"
#include "phy/channel_est.hpp"

#include <gtest/gtest.h>

namespace rc = rem::core;
namespace rch = rem::channel;

namespace {
rch::MultipathChannel clean_channel() {
  rch::Path p;
  p.gain = {1, 0};
  return rch::MultipathChannel({p});
}
}  // namespace

TEST(RrcSession, DeliversTypedMessagesAtGoodSnr) {
  rc::RrcSession sess{rc::OverlayConfig{}};
  rc::MeasurementReport r;
  r.report_id = 5;
  r.serving_cell = 10;
  r.serving_metric_db = 7.25;
  r.neighbors = {{11, 9.0, true}};
  sess.send(r);
  rc::HandoverCommand cmd;
  cmd.command_id = 6;
  cmd.target_cell = 11;
  cmd.target_channel = 2452;
  sess.send(cmd);

  rem::common::Rng rng(1);
  const auto ch = clean_channel();
  std::vector<rc::RrcMessage> got;
  for (int i = 0; i < 4 && got.size() < 2; ++i) {
    auto out = sess.transmit_subframe(ch, 25.0, rng);
    for (auto& m : out.delivered) got.push_back(std::move(m));
  }
  ASSERT_EQ(got.size(), 2u);
  const auto* rep = std::get_if<rc::MeasurementReport>(&got[0]);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(*rep, r);
  const auto* hc = std::get_if<rc::HandoverCommand>(&got[1]);
  ASSERT_NE(hc, nullptr);
  EXPECT_EQ(hc->target_cell, 11);
}

TEST(RrcSession, LosesMessagesAtTerribleSnr) {
  rc::RrcSession sess{rc::OverlayConfig{}};
  rc::MeasurementReport r;
  r.report_id = 1;
  sess.send(r);
  rem::common::Rng rng(2);
  const auto out = sess.transmit_subframe(clean_channel(), -20.0, rng);
  EXPECT_TRUE(out.delivered.empty());
  EXPECT_EQ(out.lost, 1u);
}

TEST(RrcSession, OtfsDeliversMoreThanOfdmOnHsr) {
  rem::common::Rng rng(3);
  rch::ChannelDrawConfig draw;
  draw.profile = rch::Profile::kHST350;
  draw.speed_mps = rem::common::kmh_to_mps(350.0);
  draw.carrier_hz = 2.0e9;

  int delivered_otfs = 0, delivered_ofdm = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const auto ch = rch::draw_channel(draw, rng);
    for (bool legacy : {false, true}) {
      rc::OverlayConfig cfg;
      cfg.legacy_ofdm = legacy;
      rc::RrcSession sess(cfg);
      rc::HandoverCommand cmd;
      cmd.command_id = static_cast<std::uint16_t>(trial);
      sess.send(cmd);
      const auto out = sess.transmit_subframe(ch, 4.0, rng);
      (legacy ? delivered_ofdm : delivered_otfs) +=
          static_cast<int>(out.delivered.size());
    }
  }
  EXPECT_GT(delivered_otfs, delivered_ofdm);
}

TEST(MimoCrossband, MrcGainCombines) {
  rem::common::Rng rng(7);
  rch::ChannelDrawConfig draw;
  draw.profile = rch::Profile::kHST350;
  draw.speed_mps = rem::common::kmh_to_mps(350.0);
  draw.carrier_hz = 1.88e9;

  rem::phy::Numerology num;
  num.num_subcarriers = 32;
  num.num_symbols = 16;
  num.cp_len = 8;
  rem::phy::DdChannelEstimator dd(num);

  rem::crossband::MimoInput in;
  double sum_single = 0.0;
  for (int ant = 0; ant < 2; ++ant) {
    const auto ch = rch::draw_channel(draw, rng);  // independent antennas
    rem::crossband::CrossbandInput a;
    a.num = num;
    a.f1_hz = 1.88e9;
    a.f2_hz = 2.6e9;
    a.h1_dd = dd.estimate(ch, 20.0, rng).h;
    a.h1_tf = rem::dsp::Matrix(32, 16);
    in.antennas.push_back(std::move(a));
  }
  rem::crossband::MimoRemEstimator est;
  const auto out = est.estimate(in);
  ASSERT_EQ(out.per_antenna.size(), 2u);
  for (const auto& o : out.per_antenna) sum_single += o.mean_gain;
  EXPECT_NEAR(out.mrc_gain, sum_single, 1e-12);
  EXPECT_GT(out.mrc_gain, out.per_antenna[0].mean_gain);
}

TEST(MimoCrossband, EmptyInput) {
  rem::crossband::MimoRemEstimator est;
  const auto out = est.estimate({});
  EXPECT_TRUE(out.per_antenna.empty());
  EXPECT_DOUBLE_EQ(out.mrc_gain, 0.0);
}
