// Unit tests for the rem::obs metrics registry: instrument semantics,
// histogram bucket edges, snapshot merge algebra, the flat-JSON codec's
// round trip and reject-with-context behavior, deterministic multi-thread
// merges, and the disabled registry's zero-allocation guarantee.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <sstream>
#include <thread>

namespace {

using rem::obs::Counter;
using rem::obs::Gauge;
using rem::obs::Histogram;
using rem::obs::MetricsSnapshot;
using rem::obs::Registry;

// Global allocation counter for the zero-allocation smoke test. Counting
// every operator new in the process is coarse but exactly what we want:
// any allocation between two probes is visible.
std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

TEST(Counter, AddsMonotonically) {
  Registry r;
  auto* c = r.counter("c");
  EXPECT_EQ(c->value(), 0u);
  c->add();
  c->add(41);
  EXPECT_EQ(c->value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(r.counter("c"), c);
  EXPECT_EQ(r.counter("c")->value(), 42u);
}

TEST(Gauge, KeepsLastWrite) {
  Registry r;
  auto* g = r.gauge("g");
  g->set(1.5);
  g->set(-3.25);
  EXPECT_EQ(g->value(), -3.25);
}

TEST(Histogram, BucketEdgesAreUpperInclusive) {
  Registry r;
  auto* h = r.histogram("h", {1.0, 2.0, 4.0});
  // On-edge values land in the bucket they bound; above-all goes to
  // overflow.
  h->record(0.5);   // bucket 0
  h->record(1.0);   // bucket 0 (inclusive upper edge)
  h->record(1.001); // bucket 1
  h->record(4.0);   // bucket 2
  h->record(4.5);   // overflow
  h->record(-7.0);  // bucket 0 (below the first edge)
  const auto counts = h->counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.001 + 4.0 + 4.5 - 7.0);
}

TEST(Histogram, NanGoesToOverflow) {
  Registry r;
  auto* h = r.histogram("h", {1.0});
  h->record(std::numeric_limits<double>::quiet_NaN());
  const auto counts = h->counts();
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(Histogram, RejectsBadEdges) {
  Registry r;
  EXPECT_THROW(r.histogram("empty", {}), std::invalid_argument);
  EXPECT_THROW(r.histogram("unsorted", {2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(r.histogram("dup", {1.0, 1.0}), std::invalid_argument);
}

TEST(Histogram, ReRegistrationMustMatchEdges) {
  Registry r;
  auto* h = r.histogram("h", {1.0, 2.0});
  EXPECT_EQ(r.histogram("h", {1.0, 2.0}), h);
  EXPECT_THROW(r.histogram("h", {1.0, 3.0}), std::invalid_argument);
}

TEST(Snapshot, SortedByNameAndQueryable) {
  Registry r;
  r.counter("z")->add(1);
  r.counter("a")->add(2);
  r.gauge("g")->set(0.5);
  r.histogram("h", {1.0})->record(0.25);
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].name, "a");
  EXPECT_EQ(snap.counters[1].name, "z");
  ASSERT_NE(snap.find_counter("a"), nullptr);
  EXPECT_EQ(snap.find_counter("a")->value, 2u);
  EXPECT_EQ(snap.find_counter("missing"), nullptr);
  ASSERT_NE(snap.find_histogram("h"), nullptr);
  EXPECT_EQ(snap.find_histogram("h")->total_count(), 1u);
}

TEST(Snapshot, MergeAddsCountersMaxesGauges) {
  Registry r1, r2;
  r1.counter("shared")->add(2);
  r2.counter("shared")->add(3);
  r2.counter("only2")->add(7);
  r1.gauge("peak")->set(1.0);
  r2.gauge("peak")->set(4.0);
  r1.histogram("h", {1.0, 2.0})->record(0.5);
  r2.histogram("h", {1.0, 2.0})->record(1.5);

  auto a = r1.snapshot();
  a.merge(r2.snapshot());
  EXPECT_EQ(a.find_counter("shared")->value, 5u);
  EXPECT_EQ(a.find_counter("only2")->value, 7u);
  EXPECT_EQ(a.find_gauge("peak")->value, 4.0);
  const auto* h = a.find_histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->counts[0], 1u);
  EXPECT_EQ(h->counts[1], 1u);
  EXPECT_DOUBLE_EQ(h->sum, 2.0);
}

TEST(Snapshot, MergeRejectsMismatchedEdges) {
  Registry r1, r2;
  r1.histogram("h", {1.0})->record(0.5);
  r2.histogram("h", {2.0})->record(0.5);
  auto a = r1.snapshot();
  EXPECT_THROW(a.merge(r2.snapshot()), std::invalid_argument);
}

TEST(Snapshot, QuantileInterpolatesWithinBucket) {
  Registry r;
  auto* h = r.histogram("h", {1.0, 2.0});
  for (int i = 0; i < 10; ++i) h->record(0.5);  // all in bucket [.., 1.0]
  const auto snap = r.snapshot();
  const auto* hs = snap.find_histogram("h");
  // Linear interpolation inside [0, 1]: median at ~0.5.
  EXPECT_NEAR(hs->quantile(0.5), 0.5, 0.11);
  EXPECT_EQ(hs->quantile(0.0), 0.0);
}

TEST(Codec, JsonRoundTripIsExact) {
  Registry r;
  r.counter("c.events")->add(123456789);
  r.gauge("g.peak")->set(0.1 + 0.2);  // not exactly representable: %.17g
  auto* h = r.histogram("h.lat", {0.1, 0.5, 1.0});
  h->record(0.05);
  h->record(0.3);
  h->record(99.0);
  const auto snap = r.snapshot();

  std::stringstream ss;
  rem::obs::write_metrics_json(snap, ss);
  const auto back = rem::obs::read_metrics_json(ss);

  ASSERT_EQ(back.counters.size(), 1u);
  EXPECT_EQ(back.counters[0].value, 123456789u);
  ASSERT_EQ(back.gauges.size(), 1u);
  EXPECT_EQ(back.gauges[0].value, 0.1 + 0.2);  // bit-exact round trip
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms[0].counts, snap.histograms[0].counts);
  EXPECT_EQ(back.histograms[0].edges, snap.histograms[0].edges);
  EXPECT_EQ(back.histograms[0].sum, snap.histograms[0].sum);
}

TEST(Codec, RejectsMalformedInputWithContext) {
  const auto expect_reject = [](const std::string& text,
                                const std::string& needle) {
    std::stringstream ss(text);
    try {
      rem::obs::read_metrics_json(ss);
      FAIL() << "expected rejection for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << "message was: " << e.what();
    }
  };
  expect_reject("{\n\"schema\": \"bogus-v9\"\n}\n", "schema");
  expect_reject(
      "{\n\"schema\": \"rem-metrics-v1\",\n\"counter.x\": \"notanum\"\n}\n",
      "notanum");
  expect_reject(
      "{\n\"schema\": \"rem-metrics-v1\",\nthis is not json\n}\n", "line");
  // Histogram missing its counts part.
  expect_reject(
      "{\n\"schema\": \"rem-metrics-v1\",\n\"hist.h.edges\": \"1\",\n"
      "\"hist.h.sum\": \"0\"\n}\n",
      "histogram 'h'");
}

TEST(Registry, MultiThreadRecordingMergesDeterministically) {
  // Simulate the seed-parallel runner: each "seed" gets its own registry
  // recording a seed-determined value stream; merging snapshots in seed
  // order must give bit-identical JSON no matter how many threads ran.
  const int kSeeds = 8;
  const auto run_with_threads = [&](int num_threads) {
    std::vector<MetricsSnapshot> per_seed(kSeeds);
    std::vector<std::thread> workers;
    std::atomic<int> next{0};
    for (int t = 0; t < num_threads; ++t)
      workers.emplace_back([&] {
        for (int s = next.fetch_add(1); s < kSeeds; s = next.fetch_add(1)) {
          Registry r;
          r.counter("events")->add(static_cast<std::uint64_t>(s) + 1);
          auto* h = r.histogram("vals", {1.0, 10.0, 100.0});
          for (int i = 0; i <= s; ++i) h->record(std::pow(3.0, s - i));
          r.gauge("peak")->set(static_cast<double>(s));
          per_seed[static_cast<std::size_t>(s)] = r.snapshot();
        }
      });
    for (auto& w : workers) w.join();
    MetricsSnapshot merged;
    for (const auto& s : per_seed) merged.merge(s);
    std::stringstream ss;
    rem::obs::write_metrics_json(merged, ss);
    return ss.str();
  };
  const std::string one = run_with_threads(1);
  EXPECT_EQ(one, run_with_threads(2));
  EXPECT_EQ(one, run_with_threads(8));
}

TEST(Registry, DisabledModeReturnsNullAndNeverAllocates) {
  Registry off(false);
  EXPECT_FALSE(off.enabled());
  // Short (SSO) names so the std::string temporaries below do not
  // themselves allocate; the guarantee under test is the registry's.
  const std::uint64_t before = g_allocs.load();
  auto* c = off.counter("c");
  auto* g = off.gauge("g");
  auto* h = off.histogram("h", {});  // edges not validated when disabled
  const auto snap = off.snapshot();
  const std::uint64_t after = g_allocs.load();
  EXPECT_EQ(c, nullptr);
  EXPECT_EQ(g, nullptr);
  EXPECT_EQ(h, nullptr);
  EXPECT_TRUE(snap.empty());
  EXPECT_EQ(before, after) << "disabled registry allocated";
}

TEST(Registry, MetricsEnabledMatchesEnvAtFirstUse) {
  // metrics_enabled() latches on first call; by the time tests run it has
  // a fixed value consistent with REM_METRICS. The global registry's
  // enabled state must agree with it.
  const char* env = std::getenv("REM_METRICS");
  const bool expect = env != nullptr && std::string(env) == "1";
  EXPECT_EQ(rem::obs::metrics_enabled(), expect);
  EXPECT_EQ(rem::obs::global_registry().enabled(), expect);
}

TEST(Buckets, CanonicalLayoutsAreValid) {
  for (const auto* edges :
       {&rem::obs::kernel_time_buckets_ns(),
        &rem::obs::handover_latency_buckets_s(),
        &rem::obs::outage_duration_buckets_s(),
        &rem::obs::out_of_sync_buckets_s()}) {
    ASSERT_FALSE(edges->empty());
    for (std::size_t i = 1; i < edges->size(); ++i)
      EXPECT_LT((*edges)[i - 1], (*edges)[i]);
  }
}

}  // namespace
