#include "common/rng.hpp"
#include "common/units.hpp"
#include "phy/link.hpp"

#include <gtest/gtest.h>

namespace rp = rem::phy;
namespace rch = rem::channel;

namespace {
rch::ChannelDrawConfig hsr_draw() {
  rch::ChannelDrawConfig cfg;
  cfg.profile = rch::Profile::kHST350;
  cfg.speed_mps = rem::common::kmh_to_mps(350);
  cfg.carrier_hz = 2.0e9;
  return cfg;
}

rch::ChannelDrawConfig low_mobility_draw() {
  rch::ChannelDrawConfig cfg;
  cfg.profile = rch::Profile::kEVA;
  cfg.speed_mps = rem::common::kmh_to_mps(60);
  cfg.carrier_hz = 2.0e9;
  return cfg;
}
}  // namespace

TEST(Link, PayloadSizing) {
  rp::LinkConfig cfg;
  cfg.num = rp::Numerology::lte(12, 14);
  cfg.mod = rp::Modulation::kQPSK;
  rp::LinkSimulator sim(cfg);
  // 12*14 = 168 REs * 2 bits = 336 coded bits -> 168 - 6 = 162 payload.
  EXPECT_EQ(sim.payload_bits_per_grid(), 162u);
}

TEST(Link, CleanChannelNoErrors) {
  rp::LinkConfig cfg;
  cfg.num = rp::Numerology::lte(12, 14);
  cfg.snr_db = 30.0;
  rem::common::Rng rng(1);
  for (auto w : {rp::Waveform::kOFDM, rp::Waveform::kOTFS}) {
    cfg.waveform = w;
    rp::LinkSimulator sim(cfg);
    rem::channel::Path p;
    p.gain = {1, 0};
    rem::channel::MultipathChannel ch({p});
    for (int i = 0; i < 5; ++i) {
      const auto res = sim.run_block(ch, rng);
      EXPECT_FALSE(res.block_error) << rp::waveform_name(w);
      EXPECT_EQ(res.bit_errors, 0u);
    }
  }
}

TEST(Link, VeryLowSnrFails) {
  rp::LinkConfig cfg;
  cfg.num = rp::Numerology::lte(12, 14);
  cfg.snr_db = -15.0;
  rem::common::Rng rng(2);
  for (auto w : {rp::Waveform::kOFDM, rp::Waveform::kOTFS}) {
    cfg.waveform = w;
    rp::LinkSimulator sim(cfg);
    const auto pt = sim.measure_bler(low_mobility_draw(), 20, rng);
    EXPECT_GT(pt.bler, 0.5) << rp::waveform_name(w);
  }
}

TEST(Link, BlerMonotoneInSnr) {
  rp::LinkConfig cfg;
  cfg.num = rp::Numerology::lte(12, 14);
  cfg.waveform = rp::Waveform::kOFDM;
  rem::common::Rng rng(3);
  rp::LinkSimulator sim(cfg);
  const auto curve =
      sim.bler_curve(low_mobility_draw(), {-10.0, 0.0, 15.0}, 60, rng);
  ASSERT_EQ(curve.size(), 3u);
  // Allow small non-monotonic noise but demand a clear overall slope.
  EXPECT_GT(curve[0].bler, curve[2].bler + 0.2);
  EXPECT_GE(curve[0].bler, curve[1].bler - 0.1);
}

TEST(Link, OtfsBeatsOfdmAtHighDoppler) {
  // The core Fig. 10 claim: under HST-350 Doppler at moderate SNR, OTFS
  // has (much) lower BLER than OFDM.
  rp::LinkConfig cfg;
  cfg.num = rp::Numerology::lte(12, 14);
  cfg.snr_db = 6.0;
  rem::common::Rng rng(4);

  cfg.waveform = rp::Waveform::kOFDM;
  const auto ofdm = rp::LinkSimulator(cfg).measure_bler(hsr_draw(), 80, rng);
  cfg.waveform = rp::Waveform::kOTFS;
  const auto otfs = rp::LinkSimulator(cfg).measure_bler(hsr_draw(), 80, rng);

  EXPECT_LT(otfs.bler, ofdm.bler) << "OFDM " << ofdm.bler << " vs OTFS "
                                  << otfs.bler;
}

TEST(Link, OtfsSnrMoreStableAcrossSlots) {
  // Fig. 11: legacy signaling occupies a handful of REs whose gain rides
  // the fading process, while the OTFS overlay spreads every signaling
  // symbol across the whole grid. Track the delivered SNR per subframe
  // over an evolving HST channel: the localized (legacy) series must
  // fluctuate far more than the grid-averaged (OTFS) series.
  rem::common::Rng rng(5);
  rch::ChannelDrawConfig draw = hsr_draw();
  draw.profile = rch::Profile::kHST350;
  const auto ch = rch::draw_channel(draw, rng);

  const std::size_t m = 64;
  const double df = 15e3;
  const double symbol_t = 1.0 / df;
  const std::size_t subframes = 200;
  const std::size_t symbols_per_subframe = 14;
  std::vector<double> legacy_db, otfs_db;
  for (std::size_t s = 0; s < subframes; ++s) {
    const double t0 = static_cast<double>(s * symbols_per_subframe) *
                      symbol_t;
    // Legacy: one narrowband RE region (subcarrier 5).
    const double g_legacy =
        std::norm(ch.tf_response(t0, 5.0 * df));
    // OTFS: average gain over the full grid of this subframe.
    double g_avg = 0;
    for (std::size_t mm = 0; mm < m; mm += 8)
      for (std::size_t nn = 0; nn < symbols_per_subframe; ++nn)
        g_avg += std::norm(ch.tf_response(
            t0 + static_cast<double>(nn) * symbol_t,
            static_cast<double>(mm) * df));
    g_avg /= static_cast<double>((m / 8) * symbols_per_subframe);
    legacy_db.push_back(10.0 * std::log10(std::max(g_legacy, 1e-9)));
    otfs_db.push_back(10.0 * std::log10(std::max(g_avg, 1e-9)));
  }
  const auto variance = [](const std::vector<double>& v) {
    double mean = 0;
    for (double x : v) mean += x;
    mean /= static_cast<double>(v.size());
    double s2 = 0;
    for (double x : v) s2 += (x - mean) * (x - mean);
    return s2 / static_cast<double>(v.size());
  };
  EXPECT_LT(variance(otfs_db) * 2.0, variance(legacy_db))
      << "otfs var " << variance(otfs_db) << " legacy var "
      << variance(legacy_db);
}
