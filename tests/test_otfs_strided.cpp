// The in-place strided SFFT/ISFFT must agree with the old copy-based
// implementation (a fresh CVec per row/column through fft_copy/ifft_copy),
// round-trip exactly, and stay unitary on awkward non-square grids.
#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/matrix.hpp"
#include "phy/otfs.hpp"

#include <gtest/gtest.h>

#include <cmath>

using rem::dsp::cd;
using rem::dsp::CVec;
using rem::dsp::Matrix;

namespace {

Matrix random_grid(std::size_t m, std::size_t n, rem::common::Rng& rng) {
  Matrix g(m, n);
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c) g(r, c) = rng.complex_gaussian(1.0);
  return g;
}

// Reference implementation: the pre-refactor copy-based unitary DFTs.
void ref_dft_rows(Matrix& m, bool invert) {
  const double scale = invert ? std::sqrt(static_cast<double>(m.cols()))
                              : 1.0 / std::sqrt(static_cast<double>(m.cols()));
  for (std::size_t r = 0; r < m.rows(); ++r) {
    CVec row = m.row(r);
    if (invert)
      row = rem::dsp::ifft_copy(row);
    else
      row = rem::dsp::fft_copy(row);
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = row[c] * scale;
  }
}

void ref_dft_cols(Matrix& m, bool invert) {
  const double scale = invert ? std::sqrt(static_cast<double>(m.rows()))
                              : 1.0 / std::sqrt(static_cast<double>(m.rows()));
  for (std::size_t c = 0; c < m.cols(); ++c) {
    CVec col = m.col(c);
    if (invert)
      col = rem::dsp::ifft_copy(col);
    else
      col = rem::dsp::fft_copy(col);
    for (std::size_t r = 0; r < m.rows(); ++r) m(r, c) = col[r] * scale;
  }
}

Matrix ref_sfft(const Matrix& dd) {
  Matrix tf = dd;
  ref_dft_cols(tf, false);
  ref_dft_rows(tf, true);
  return tf;
}

Matrix ref_isfft(const Matrix& tf) {
  Matrix dd = tf;
  ref_dft_rows(dd, false);
  ref_dft_cols(dd, true);
  return dd;
}

}  // namespace

// Non-square grids, mixing power-of-two and Bluestein dimensions.
class OtfsStrided
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(OtfsStrided, RoundTripRecoversGrid) {
  const auto [m, n] = GetParam();
  rem::common::Rng rng(m * 131 + n);
  const Matrix x = random_grid(m, n, rng);
  const Matrix back = rem::phy::isfft(rem::phy::sfft(x));
  EXPECT_LT(Matrix::max_abs_diff(x, back), 1e-10) << m << "x" << n;
}

TEST_P(OtfsStrided, SfftIsUnitary) {
  const auto [m, n] = GetParam();
  rem::common::Rng rng(m * 17 + n);
  const Matrix x = random_grid(m, n, rng);
  const Matrix tf = rem::phy::sfft(x);
  EXPECT_NEAR(tf.frobenius_norm(), x.frobenius_norm(),
              1e-9 * x.frobenius_norm())
      << m << "x" << n;
  const Matrix dd = rem::phy::isfft(x);
  EXPECT_NEAR(dd.frobenius_norm(), x.frobenius_norm(),
              1e-9 * x.frobenius_norm())
      << m << "x" << n;
}

TEST_P(OtfsStrided, MatchesCopyBasedReference) {
  const auto [m, n] = GetParam();
  rem::common::Rng rng(m * 7 + n);
  const Matrix x = random_grid(m, n, rng);
  EXPECT_LT(Matrix::max_abs_diff(rem::phy::sfft(x), ref_sfft(x)), 1e-10)
      << m << "x" << n;
  EXPECT_LT(Matrix::max_abs_diff(rem::phy::isfft(x), ref_isfft(x)), 1e-10)
      << m << "x" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Grids, OtfsStrided,
    ::testing::Values(std::pair<std::size_t, std::size_t>{3, 5},
                      std::pair<std::size_t, std::size_t>{12, 7},
                      std::pair<std::size_t, std::size_t>{16, 9},
                      std::pair<std::size_t, std::size_t>{60, 14},
                      std::pair<std::size_t, std::size_t>{64, 16},
                      std::pair<std::size_t, std::size_t>{600, 14},
                      std::pair<std::size_t, std::size_t>{1, 4}));

TEST(OtfsStrided, SingleDdImpulseSpreadsFlat) {
  // An impulse at DD bin (0,0) must map to a constant-magnitude TF grid —
  // the full-diversity property the overlay relies on.
  const std::size_t m = 12, n = 7;
  Matrix x(m, n);
  x(0, 0) = cd(1.0, 0.0);
  const Matrix tf = rem::phy::sfft(x);
  const double expect = 1.0 / std::sqrt(static_cast<double>(m * n));
  for (std::size_t r = 0; r < m; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_NEAR(std::abs(tf(r, c)), expect, 1e-12);
}
