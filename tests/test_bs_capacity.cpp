// BS capacity model unit tests (deterministic slot/queue scheduling, shed
// and flush semantics, config validation, the source-side admission
// backoff FSM) plus simulator-level FSM edges: busy-rejects honoring the
// backoff hint, pivoting to the Theorem-2 fallback, queue-full sheds
// classifying as feedback-delay losses, and crash-restart recovery
// (fixed-victim selection, in-flight signaling loss, stale-context
// replies after a stateless restart).
#include "core/admission.hpp"
#include "scenario_runner.hpp"
#include "sim/bs_capacity.hpp"
#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rs = rem::sim;

TEST(BsStation, UncontendedJobStartsImmediately) {
  rs::BsStation st(2, 4);
  const auto job = st.submit(10.0, rs::BsJobKind::kPrepAdmission, 0.002);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->submit_s, 10.0);
  EXPECT_EQ(job->start_s, 10.0);
  EXPECT_EQ(job->done_s, 10.002);
  EXPECT_EQ(st.occupancy(10.0), 1);
  EXPECT_EQ(st.waiting(10.0), 0);
  // Completion is handed back exactly once.
  EXPECT_TRUE(st.take_completed(10.001).empty());
  const auto done = st.take_completed(10.002);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].kind, rs::BsJobKind::kPrepAdmission);
  EXPECT_TRUE(st.take_completed(11.0).empty());
  EXPECT_EQ(st.unfinished(), 0);
}

TEST(BsStation, QueuesBehindBusySlotsAndShedsWhenFull) {
  rs::BsStation st(1, 2);
  // Slot busy until 1.0; two more fit in the queue; the fourth is shed.
  ASSERT_TRUE(st.submit(0.0, rs::BsJobKind::kRrcDecision, 1.0));
  const auto second = st.submit(0.0, rs::BsJobKind::kRrcDecision, 1.0);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->start_s, 1.0);  // waits for the slot
  EXPECT_EQ(second->done_s, 2.0);
  ASSERT_TRUE(st.submit(0.0, rs::BsJobKind::kContextLookup, 0.5));
  EXPECT_EQ(st.occupancy(0.0), 3);
  EXPECT_EQ(st.waiting(0.0), 2);
  EXPECT_EQ(st.load(0.0), 1.0);  // 3 / (1 slot + 2 queue)
  EXPECT_FALSE(st.submit(0.0, rs::BsJobKind::kPrepAdmission, 0.1));  // shed
  // Completion order follows done_s: 1.0, then 2.0, then 2.5.
  const auto done = st.take_completed(3.0);
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0].done_s, 1.0);
  EXPECT_EQ(done[1].done_s, 2.0);
  EXPECT_EQ(done[2].done_s, 2.5);
  EXPECT_EQ(done[2].start_s, 2.0);
  EXPECT_EQ(done[2].kind, rs::BsJobKind::kContextLookup);
}

TEST(BsStation, FlushLosesScheduledJobsAndCountsNonBackground) {
  rs::BsStation st(1, 4);
  ASSERT_TRUE(st.submit(0.0, rs::BsJobKind::kBackground, 0.020));
  ASSERT_TRUE(st.submit(0.0, rs::BsJobKind::kRrcDecision, 0.010));
  ASSERT_TRUE(st.submit(0.0, rs::BsJobKind::kPrepAdmission, 0.002));
  EXPECT_EQ(st.unfinished(), 2);  // background excluded
  EXPECT_EQ(st.flush(), 2);
  EXPECT_EQ(st.occupancy(0.0), 0);
  EXPECT_EQ(st.unfinished(), 0);
  EXPECT_TRUE(st.take_completed(10.0).empty());
  // The station is usable again after the crash.
  const auto job = st.submit(1.0, rs::BsJobKind::kContextLookup, 0.002);
  ASSERT_TRUE(job.has_value());
  EXPECT_EQ(job->start_s, 1.0);
}

TEST(BsJobKindName, NamesEveryKind) {
  EXPECT_EQ(rs::bs_job_kind_name(rs::BsJobKind::kRrcDecision),
            "rrc_decision");
  EXPECT_EQ(rs::bs_job_kind_name(rs::BsJobKind::kPrepAdmission),
            "prep_admission");
  EXPECT_EQ(rs::bs_job_kind_name(rs::BsJobKind::kContextLookup),
            "context_lookup");
  EXPECT_EQ(rs::bs_job_kind_name(rs::BsJobKind::kBackground), "background");
}

TEST(BsCapacityConfig, ValidateNamesTheOffendingField) {
  rs::BsCapacityConfig ok;
  EXPECT_NO_THROW(rs::validate(ok));
  const auto expect_throw_naming = [](rs::BsCapacityConfig cfg,
                                      const std::string& field) {
    try {
      rs::validate(cfg);
      FAIL() << "expected invalid_argument naming " << field;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
          << e.what();
    }
  };
  rs::BsCapacityConfig bad = ok;
  bad.slots = 0;
  expect_throw_naming(bad, "slots");
  bad = ok;
  bad.prep_service_s = 0.0;
  expect_throw_naming(bad, "prep_service_s");
  bad = ok;
  bad.ctx_service_s = -1.0;
  expect_throw_naming(bad, "ctx_service_s");
  bad = ok;
  bad.background_service_s = 0.0;
  expect_throw_naming(bad, "background_service_s");
  bad = ok;
  bad.admission_load_threshold = 0.0;
  expect_throw_naming(bad, "admission_load_threshold");
  bad = ok;
  bad.admission_load_threshold = 1.5;
  expect_throw_naming(bad, "admission_load_threshold");
  bad = ok;
  bad.reject_backoff_hint_s = -0.1;
  expect_throw_naming(bad, "reject_backoff_hint_s");
  bad = ok;
  bad.admission_max_retries = -1;
  expect_throw_naming(bad, "admission_max_retries");
}

TEST(AdmissionBackoffFsm, FallbackFirstThenBoundedBackoffThenFail) {
  rem::core::AdmissionBackoffFsm fsm(2);
  // A fresh fallback always wins over waiting.
  EXPECT_EQ(fsm.decide(true), rem::core::AdmissionAction::kFallback);
  EXPECT_EQ(fsm.retries(), 0);  // fallback costs no retry budget
  // Without a fallback the FSM backs off until the budget runs out.
  EXPECT_EQ(fsm.decide(false), rem::core::AdmissionAction::kBackoff);
  EXPECT_EQ(fsm.decide(false), rem::core::AdmissionAction::kBackoff);
  EXPECT_EQ(fsm.retries(), 2);
  EXPECT_TRUE(fsm.exhausted());
  EXPECT_EQ(fsm.decide(false), rem::core::AdmissionAction::kFail);
}

TEST(AdmissionBackoffFsm, ResumesFromPersistedRetryCount) {
  // The simulator persists retries() into the pending handover and
  // reconstructs the FSM per busy-reject; resuming mid-attempt must not
  // reset the budget.
  rem::core::AdmissionBackoffFsm fsm(3, 2);
  EXPECT_EQ(fsm.decide(false), rem::core::AdmissionAction::kBackoff);
  EXPECT_EQ(fsm.retries(), 3);
  EXPECT_EQ(fsm.decide(false), rem::core::AdmissionAction::kFail);
  // Degenerate budgets clamp instead of underflowing.
  rem::core::AdmissionBackoffFsm none(-1, -5);
  EXPECT_EQ(none.retries(), 0);
  EXPECT_EQ(none.decide(false), rem::core::AdmissionAction::kFail);
}

// ---------- Simulator-level FSM edges ----------

namespace {

/// Periodic scripted windows of one kind over [first_s, horizon_s).
rs::FaultConfig periodic(rs::FaultKind kind, double first_s, double period_s,
                         double duration_s, double magnitude,
                         double horizon_s) {
  rs::FaultConfig cfg;
  for (double t = first_s; t < horizon_s; t += period_s)
    cfg.windows.push_back({kind, t, duration_s, magnitude});
  return cfg;
}

rem::bench::SeedRunResult run_faulted(const rs::FaultConfig& faults,
                                      bool run_rem,
                                      double duration_s = 120.0) {
  rem::phy::LogisticBlerModel bler;
  rem::bench::SeedRunOptions opts;
  opts.faults = faults;
  opts.record_events = true;
  return rem::bench::run_seed(rem::trace::Route::kBeijingShanghai, 300.0,
                              duration_s, 1, run_rem, bler, opts);
}

int count_events(const rs::SimStats& s, rs::EventKind kind) {
  int n = 0;
  for (const auto& e : s.events)
    if (e.kind == kind) ++n;
  return n;
}

}  // namespace

TEST(AdmissionFsmEdges, BusyRejectBacksOffHonoringTheHint) {
  // Saturate every station for most of the run: REM's preparations get
  // busy-rejected, and each backoff retry must wait out the carried hint
  // before the next HANDOVER REQUEST goes on the wire.
  const auto r = run_faulted(
      periodic(rs::FaultKind::kBsOverload, 10.0, 1e9, 100.0, 1.0, 120.0),
      /*run_rem=*/true);
  EXPECT_GT(r.rem.admission_rejects, 0);
  EXPECT_GT(r.rem.admission_backoff_retries, 0);
  EXPECT_EQ(count_events(r.rem, rs::EventKind::kAdmissionReject),
            r.rem.admission_rejects);
  EXPECT_EQ(count_events(r.rem, rs::EventKind::kAdmissionRetry),
            r.rem.admission_backoff_retries);
  const double hint = rs::BsCapacityConfig{}.reject_backoff_hint_s;
  int checked = 0;
  for (std::size_t i = 0; i < r.rem.events.size(); ++i) {
    if (r.rem.events[i].kind != rs::EventKind::kAdmissionRetry) continue;
    for (std::size_t j = i + 1; j < r.rem.events.size(); ++j) {
      if (r.rem.events[j].kind == rs::EventKind::kPrepRequest) {
        EXPECT_GE(r.rem.events[j].t_s - r.rem.events[i].t_s, hint - 1e-9);
        ++checked;
        break;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(AdmissionFsmEdges, BusyRejectPivotsToFallbackWhenAvailable) {
  // Across repeated overload windows some busy-rejected attempts carry a
  // fresh Theorem-2 fallback target; those must pivot instead of waiting.
  const auto r = run_faulted(
      periodic(rs::FaultKind::kBsOverload, 15.0, 40.0, 12.0, 1.0, 240.0),
      /*run_rem=*/true, 240.0);
  EXPECT_GT(r.rem.admission_rejects, 0);
  // Every busy reject resolved into exactly one FSM action.
  EXPECT_EQ(r.rem.admission_rejects,
            r.rem.admission_backoff_retries +
                count_events(r.rem, rs::EventKind::kPrepFallback) +
                count_events(r.rem, rs::EventKind::kPrepFailed));
}

TEST(AdmissionFsmEdges, LegacyDecisionShedClassifiesAsFeedbackDelayLoss) {
  // Sustained full-capacity overload: legacy's network-side decision jobs
  // shed on the bounded queue, the serving link eventually dies with the
  // network never having acted on the report, and the RLF classifies as a
  // feedback-delay loss (Table 2), not a generic failure.
  const auto r = run_faulted(
      periodic(rs::FaultKind::kBsOverload, 10.0, 1e9, 105.0, 1.0, 120.0),
      /*run_rem=*/false);
  EXPECT_GT(r.legacy.bs_queue_shed, 0);
  EXPECT_EQ(count_events(r.legacy, rs::EventKind::kBsQueueShed),
            r.legacy.bs_queue_shed);
  const auto it = r.legacy.failures_by_cause.find(
      rs::FailureCause::kFeedbackDelayLoss);
  ASSERT_NE(it, r.legacy.failures_by_cause.end());
  EXPECT_GT(it->second, 0);
}

TEST(CrashRestartEdges, MagnitudeSelectsTheFixedVictimCell) {
  // magnitude = 2 + cell pins the victim; every crash/restart event in
  // the log must name that cell.
  rs::FaultConfig faults;
  faults.windows = {{rs::FaultKind::kBsCrashRestart, 30.0, 5.0, 2.0 + 3.0}};
  const auto r = run_faulted(faults, /*run_rem=*/false, 60.0);
  EXPECT_EQ(r.legacy.bs_crashes, 1);
  for (const auto& e : r.legacy.events) {
    if (e.kind == rs::EventKind::kBsCrash ||
        e.kind == rs::EventKind::kBsRestart)
      EXPECT_EQ(e.target_cell, 3);
  }
  EXPECT_EQ(count_events(r.legacy, rs::EventKind::kBsRestart), 1);
}

TEST(CrashRestartEdges, ServingCrashDropsInFlightSignalingAndRecovers) {
  // magnitude 1 kills the serving BS at window open: signaling in flight
  // to or from the victim is lost (never silently re-routed), the UE
  // re-establishes, and the run ends with zero invariant violations
  // (checked inside run_seed).
  const auto r = run_faulted(
      periodic(rs::FaultKind::kBsCrashRestart, 20.0, 60.0, 5.0, 1.0, 120.0),
      /*run_rem=*/true);
  EXPECT_EQ(r.rem.bs_crashes, 2);
  EXPECT_EQ(r.legacy.bs_crashes, 2);
  EXPECT_GT(r.legacy.bs_crash_dropped_msgs + r.rem.bs_crash_dropped_msgs, 0);
  // Each crash window closed with a restart before the horizon.
  EXPECT_EQ(count_events(r.rem, rs::EventKind::kBsRestart), 2);
}

TEST(CrashRestartEdges, ShortCrashYieldsStaleContextAfterRestart) {
  // A short crash window: the UE's RLF and outage camping outlive the
  // window, so the context fetch reaches the victim *after* it restarted
  // stateless — the reply must be an explicit stale-context indication,
  // which degrades (delays) the re-establishment instead of failing it
  // silently.
  const auto r = run_faulted(
      periodic(rs::FaultKind::kBsCrashRestart, 20.0, 30.0, 1.5, 1.0, 140.0),
      /*run_rem=*/true, 140.0);
  EXPECT_GT(r.legacy.stale_context_responses + r.rem.stale_context_responses,
            0);
  EXPECT_EQ(count_events(r.legacy, rs::EventKind::kContextStale),
            r.legacy.stale_context_responses);
  EXPECT_EQ(count_events(r.rem, rs::EventKind::kContextStale),
            r.rem.stale_context_responses);
}
