#include "common/rng.hpp"
#include "dsp/matrix.hpp"
#include "dsp/prony.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

using rem::dsp::cd;
namespace rd = rem::dsp;

namespace {

std::vector<cd> make_seq(const std::vector<rd::ExponentialComponent>& comps,
                         std::size_t n) {
  return rd::eval_exponentials(comps, n, 1.0);
}

cd pole(double cycles_per_sample) {
  const double ang = 2.0 * std::numbers::pi * cycles_per_sample;
  return {std::cos(ang), std::sin(ang)};
}

}  // namespace

TEST(Prony, SingleExponentialExact) {
  const std::vector<rd::ExponentialComponent> truth = {
      {cd(0.8, 0.3), pole(0.07)}};
  const auto seq = make_seq(truth, 16);
  const auto fit = rd::fit_exponentials(seq, 3);
  ASSERT_GE(fit.size(), 1u);
  EXPECT_LT(std::abs(fit[0].pole - truth[0].pole), 1e-6);
  EXPECT_LT(std::abs(fit[0].amplitude - truth[0].amplitude), 1e-6);
}

TEST(Prony, TwoExponentialsSeparated) {
  const std::vector<rd::ExponentialComponent> truth = {
      {cd(1.0, 0.0), pole(0.05)}, {cd(0.4, 0.2), pole(-0.12)}};
  const auto seq = make_seq(truth, 24);
  const auto fit = rd::fit_exponentials(seq, 3);
  ASSERT_GE(fit.size(), 2u);
  // Sorted by |amplitude|: strongest first.
  EXPECT_LT(std::abs(fit[0].pole - truth[0].pole), 1e-5);
  EXPECT_LT(std::abs(fit[1].pole - truth[1].pole), 1e-5);
}

TEST(Prony, ThreeExponentials) {
  const std::vector<rd::ExponentialComponent> truth = {
      {cd(1.0, 0), pole(0.06)},
      {cd(0.6, 0), pole(-0.09)},
      {cd(0.3, 0), pole(0.21)}};
  const auto seq = make_seq(truth, 32);
  const auto fit = rd::fit_exponentials(seq, 3, 0.01);
  ASSERT_EQ(fit.size(), 3u);
  const auto recon = rd::eval_exponentials(fit, 32, 1.0);
  double err = 0, ref = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    err += std::norm(recon[i] - seq[i]);
    ref += std::norm(seq[i]);
  }
  EXPECT_LT(err / ref, 1e-6);
}

TEST(Prony, NoisyRecovery) {
  rem::common::Rng rng(5);
  const std::vector<rd::ExponentialComponent> truth = {
      {cd(1.0, 0.0), pole(0.08)}};
  auto seq = make_seq(truth, 16);
  for (auto& x : seq) x += rng.complex_gaussian(0.01);  // 20 dB SNR
  const auto fit = rd::fit_exponentials(seq, 2);
  ASSERT_GE(fit.size(), 1u);
  EXPECT_LT(std::abs(std::arg(fit[0].pole) - std::arg(truth[0].pole)),
            0.03);
}

TEST(Prony, AngleScalingRetargetsFrequency) {
  const std::vector<rd::ExponentialComponent> comps = {
      {cd(1.0, 0.0), pole(0.05)}};
  const double scale = 1.4;
  const auto scaled = rd::eval_exponentials(comps, 20, scale);
  // The scaled sequence should be a pure exponential at 0.07 cyc/sample.
  const cd expect = pole(0.05 * scale);
  for (std::size_t c = 1; c < scaled.size(); ++c) {
    const cd ratio = scaled[c] / scaled[c - 1];
    EXPECT_LT(std::abs(ratio - expect), 1e-9);
  }
}

TEST(Prony, ShortSequenceFallback) {
  const std::vector<rd::ExponentialComponent> truth = {
      {cd(0.9, 0.1), pole(0.1)}};
  const auto seq = make_seq(truth, 3);
  const auto fit = rd::fit_exponentials(seq, 3);
  ASSERT_EQ(fit.size(), 1u);
  EXPECT_LT(std::abs(fit[0].pole - truth[0].pole), 1e-6);
}

TEST(Prony, EmptyInput) {
  EXPECT_TRUE(rd::fit_exponentials({}, 3).empty());
}

class PronySweep : public ::testing::TestWithParam<double> {};

TEST_P(PronySweep, RecoversFrequencyAcrossRange) {
  // Property: for any frequency inside (-0.5, 0.5) cyc/sample away from the
  // edges, a clean single exponential is recovered to high precision.
  const double f = GetParam();
  const std::vector<rd::ExponentialComponent> truth = {
      {cd(1.0, -0.5), pole(f)}};
  const auto seq = make_seq(truth, 16);
  const auto fit = rd::fit_exponentials(seq, 3);
  ASSERT_GE(fit.size(), 1u);
  EXPECT_NEAR(std::arg(fit[0].pole), std::arg(truth[0].pole), 1e-6)
      << "f=" << f;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, PronySweep,
                         ::testing::Values(-0.45, -0.3, -0.17, -0.05, 0.0,
                                           0.03, 0.11, 0.25, 0.38, 0.45));

TEST(Prony, PoleMagnitudeClamped) {
  // Strongly decaying sequences have poles pulled toward the unit circle
  // (the library models oscillations, not decay).
  std::vector<cd> seq(16);
  for (std::size_t c = 0; c < 16; ++c)
    seq[c] = std::pow(0.5, static_cast<double>(c));
  const auto fit = rd::fit_exponentials(seq, 1);
  ASSERT_GE(fit.size(), 1u);
  EXPECT_GE(std::abs(fit[0].pole), 0.8 - 1e-9);
}
