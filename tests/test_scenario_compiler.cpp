// Scenario compiler verification (label: tier1): the declarative JSON
// schema round-trips canonically, every malformed input is rejected with
// the offending key/scenario named, compilation reproduces a hand-built
// SimConfig bit-for-bit, time compression scales the fault timeline but
// never magnitudes, and a compiled fleet run is bit-identical across
// worker-thread counts.
#include "scenario/scenario.hpp"

#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "fleet_runner.hpp"
#include "testkit/golden.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

namespace scn = rem::scenario;

/// Expect `fn` to throw `Ex` with `fragment` somewhere in the message —
/// the reject-with-context contract: errors name what went wrong.
template <typename Ex, typename Fn>
void expect_throw_with(const std::string& fragment, Fn&& fn) {
  try {
    fn();
    FAIL() << "expected an exception mentioning '" << fragment << "'";
  } catch (const Ex& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "actual message: " << e.what();
  }
}

scn::ScenarioSpec parse(const std::string& json) {
  std::istringstream is(json);
  return scn::read_scenario_json(is);
}

/// Minimal valid scenario JSON with extra lines spliced in before the
/// closing brace.
std::string minimal_json(const std::string& extra = "") {
  return "{\n"
         "  \"schema\": \"rem-scenario-v1\",\n"
         "  \"name\": \"t\",\n"
         "  \"description\": \"test\",\n" +
         extra + "}\n";
}

/// A spec exercising every field group: mixed classes, scripted + random
/// faults, asymmetric backhaul, a non-default BS profile, custom gates.
scn::ScenarioSpec full_spec() {
  scn::ScenarioSpec s;
  s.name = "full";
  s.description = "every field group populated";
  s.paper_ref = "fig 9";
  s.route = rem::trace::Route::kBeijingTaiyuan;
  s.layout = scn::Layout::kUrbanCanyon;
  s.speed_kmh = 90.0;
  s.duration_s = 80.0;
  s.time_compression = 2.0;
  s.seed = 77;
  s.ue_count = 5;
  s.start_spread_m = 900.0;
  s.classes = {{"vehicular", 3, 40.0, 100.0}, {"pedestrian", 2, 3.0, 6.0}};
  rem::sim::FaultWindow w;
  w.kind = rem::sim::FaultKind::kBsOverload;
  w.start_s = 10.0;
  w.duration_s = 6.0;
  w.magnitude = 1.0;
  s.faults = {w};
  rem::sim::RandomFaultSpec r;
  r.kind = rem::sim::FaultKind::kPilotOutage;
  r.mean_gap_s = 30.0;
  r.duration_lo_s = 1.0;
  r.duration_hi_s = 2.0;
  r.magnitude_lo = 10.0;
  r.magnitude_hi = 20.0;
  s.rfaults = {r};
  s.backhaul.loss_prob = 0.03;
  s.backhaul.reverse_latency_scale = 2.0;
  s.bs_profile = "small_cell";
  s.bs_capacity = rem::sim::BsCapacityConfig{};
  s.bs_capacity.slots = 1;
  s.bs_capacity.queue_capacity = 4;
  s.bs_capacity.admission_load_threshold = 0.5;
  s.gates.max_rem_failure_ratio = 0.25;
  s.gates.rem_le_legacy = false;
  s.gates.min_legacy_handovers = 7;
  return s;
}

// --- schema round-trip ----------------------------------------------------

TEST(ScenarioSchema, WriteReadWriteIsCanonical) {
  const auto spec = full_spec();
  const std::string once = scn::write_scenario_json(spec);
  std::istringstream is(once);
  const auto back = scn::read_scenario_json(is);
  EXPECT_EQ(scn::write_scenario_json(back), once);
  // Spot-check the parsed fields, not just the re-emission.
  EXPECT_EQ(back.name, spec.name);
  EXPECT_EQ(back.route, spec.route);
  EXPECT_EQ(back.layout, spec.layout);
  EXPECT_EQ(back.seed, spec.seed);
  ASSERT_EQ(back.classes.size(), 2u);
  EXPECT_EQ(back.classes[0].name, "vehicular");
  EXPECT_EQ(back.classes[0].count, 3);
  ASSERT_EQ(back.faults.size(), 1u);
  EXPECT_EQ(back.faults[0].kind, rem::sim::FaultKind::kBsOverload);
  ASSERT_EQ(back.rfaults.size(), 1u);
  EXPECT_EQ(back.backhaul.reverse_latency_scale, 2.0);
  EXPECT_EQ(back.bs_profile, "small_cell");
  EXPECT_EQ(back.gates.min_legacy_handovers, 7);
}

TEST(ScenarioSchema, EveryLibraryScenarioRoundTrips) {
  const auto names = scn::list_scenario_names(REM_SCENARIO_DIR);
  EXPECT_GE(names.size(), 10u) << "library shrank below the shipped set";
  for (const auto& name : names) {
    SCOPED_TRACE(name);
    const auto spec = scn::load_scenario(REM_SCENARIO_DIR, name);
    const std::string once = scn::write_scenario_json(spec);
    std::istringstream is(once);
    EXPECT_EQ(scn::write_scenario_json(scn::read_scenario_json(is)), once);
    // And each must compile at its authored parameters.
    EXPECT_NO_THROW(scn::compile(spec));
  }
}

TEST(ScenarioSchema, NamedShorthandsExpandToClasses) {
  const auto spec = parse(minimal_json("  \"ue.pedestrian\": \"2\",\n"
                                       "  \"ue.vehicular\": \"3\",\n"));
  ASSERT_EQ(spec.classes.size(), 2u);
  EXPECT_EQ(spec.ue_count, 5);
  EXPECT_EQ(spec.classes[0].name, "pedestrian");
  EXPECT_EQ(spec.classes[0].count, 2);
  EXPECT_EQ(spec.classes[0].speed_lo_kmh, 3.0);
  EXPECT_EQ(spec.classes[0].speed_hi_kmh, 6.0);
  EXPECT_EQ(spec.classes[1].name, "vehicular");
  EXPECT_EQ(spec.classes[1].speed_hi_kmh, 100.0);
}

// --- reject-with-context --------------------------------------------------

TEST(ScenarioSchema, RejectsUnknownAndDuplicateKeys) {
  expect_throw_with<std::runtime_error>("unknown key(s) 'ue.warp_speed'", [] {
    parse(minimal_json("  \"ue.warp_speed\": \"9000\",\n"));
  });
  expect_throw_with<std::runtime_error>("duplicate key 'seed'", [] {
    parse(minimal_json("  \"seed\": \"1\",\n  \"seed\": \"2\",\n"));
  });
}

TEST(ScenarioSchema, RejectsBadSchemaAndMissingRequiredKeys) {
  expect_throw_with<std::runtime_error>("missing 'schema' key", [] {
    parse("{\n  \"name\": \"t\",\n  \"description\": \"d\",\n}\n");
  });
  expect_throw_with<std::runtime_error>("schema 'rem-scenario-v0'", [] {
    parse("{\n  \"schema\": \"rem-scenario-v0\",\n  \"name\": \"t\",\n"
          "  \"description\": \"d\",\n}\n");
  });
  expect_throw_with<std::runtime_error>("missing 'description' key", [] {
    parse("{\n  \"schema\": \"rem-scenario-v1\",\n  \"name\": \"t\",\n}\n");
  });
}

TEST(ScenarioSchema, RejectsMalformedLinesWithLineNumber) {
  expect_throw_with<std::runtime_error>("line 3", [] {
    parse("{\n  \"schema\": \"rem-scenario-v1\",\n  not json at all\n}\n");
  });
}

TEST(ScenarioSchema, RejectsContradictoryPopulationForms) {
  expect_throw_with<std::runtime_error>("contradictory UE population", [] {
    parse(minimal_json("  \"ue.speed_lo_kmh\": \"100\",\n"
                       "  \"ue.pedestrian\": \"2\",\n"));
  });
  expect_throw_with<std::runtime_error>("contradictory UE population", [] {
    parse(minimal_json("  \"ue.pedestrian\": \"2\",\n"
                       "  \"ue.class.0.name\": \"a\",\n"
                       "  \"ue.class.0.count\": \"1\",\n"
                       "  \"ue.class.0.speed_lo_kmh\": \"10\",\n"
                       "  \"ue.class.0.speed_hi_kmh\": \"20\",\n"));
  });
  expect_throw_with<std::runtime_error>("contradicts the class counts", [] {
    parse(minimal_json("  \"ue.count\": \"9\",\n"
                       "  \"ue.pedestrian\": \"2\",\n"));
  });
  expect_throw_with<std::runtime_error>("needs all of", [] {
    parse(minimal_json("  \"ue.class.0.name\": \"a\",\n"
                       "  \"ue.class.0.count\": \"1\",\n"));
  });
}

TEST(ScenarioSchema, RejectsUnknownFaultKindAndPartialWindow) {
  expect_throw_with<std::runtime_error>("fault.0.kind", [] {
    parse(minimal_json("  \"fault.0.kind\": \"meteor_strike\",\n"
                       "  \"fault.0.start_s\": \"1\",\n"
                       "  \"fault.0.duration_s\": \"1\",\n"
                       "  \"fault.0.magnitude\": \"1\",\n"));
  });
  expect_throw_with<std::runtime_error>(
      "needs all of kind/start_s/duration_s/magnitude", [] {
        parse(minimal_json("  \"fault.0.kind\": \"pilot_outage\",\n"));
      });
}

TEST(ScenarioCompile, RejectsWithScenarioNamedInContext) {
  // Overlapping scripted windows of the same kind: FaultInjector's own
  // validation fires, rewrapped with the scenario name prefixed.
  auto spec = full_spec();
  rem::sim::FaultWindow w = spec.faults[0];
  w.start_s = 12.0;  // overlaps [10, 16) of the same kind
  spec.faults.push_back(w);
  expect_throw_with<std::invalid_argument>("scenario 'full'", [&] {
    scn::compile(spec);
  });

  // Out-of-range speeds carry the offending field name.
  auto fast = full_spec();
  fast.classes[0].speed_hi_kmh = 700.0;
  expect_throw_with<std::invalid_argument>("speed_hi_kmh", [&] {
    scn::compile(fast);
  });

  // Class counts must sum to the UE count.
  auto sum = full_spec();
  sum.ue_count = 4;
  expect_throw_with<std::invalid_argument>("class counts sum to 5", [&] {
    scn::compile(sum);
  });

  // A ue_count override is meaningless against a pinned class mix.
  scn::CompileOverrides ov;
  ov.ue_count = 9;
  expect_throw_with<std::invalid_argument>("class-mix population", [&] {
    scn::compile(full_spec(), ov);
  });
}

// --- compiled-config bit-identity -----------------------------------------

TEST(ScenarioCompile, PlainSpecMatchesHandBuiltConfigBitForBit) {
  scn::ScenarioSpec spec;
  spec.name = "hand";
  spec.description = "hand-built reference";
  spec.route = rem::trace::Route::kBeijingShanghai;
  spec.speed_kmh = 300.0;
  spec.duration_s = 60.0;
  spec.seed = 5;
  spec.ue_count = 4;
  const auto compiled = scn::compile(spec);

  // The rail-linear layout leaves the route preset untouched, so the
  // compiled scenario must be make_scenario plus exactly the documented
  // fleet wiring and route-length recompute — nothing else.
  auto hand = rem::trace::make_scenario(spec.route, 300.0, 60.0);
  hand.sim.fleet_size = 4;
  hand.sim.fleet.speed_min_kmh = spec.ue_speed_lo_kmh;
  hand.sim.fleet.speed_max_kmh = spec.ue_speed_hi_kmh;
  hand.sim.fleet.start_spread_m = spec.start_spread_m;
  hand.deployment.route_len_m =
      rem::common::kmh_to_mps(spec.ue_speed_hi_kmh) * 60.0 +
      spec.start_spread_m + 2.0 * hand.deployment.site_spacing_mean_m;

  scn::CompiledScenario ref;
  ref.name = compiled.name;
  ref.description = compiled.description;
  ref.paper_ref = compiled.paper_ref;
  ref.scenario = hand;
  ref.seed = compiled.seed;
  ref.gates = compiled.gates;
  const auto a = scn::digest_fields(compiled);
  const auto b = scn::digest_fields(ref);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first) << "field order diverged at " << i;
    EXPECT_EQ(a[i].second, b[i].second) << "field " << a[i].first;
  }
}

TEST(ScenarioCompile, TimeCompressionScalesTimelineNotMagnitudes) {
  auto spec = full_spec();
  spec.time_compression = 1.0;
  scn::CompileOverrides ov;
  ov.extra_time_compression = 4.0;
  const auto c = scn::compile(spec, ov);
  EXPECT_DOUBLE_EQ(c.scenario.sim.duration_s, spec.duration_s / 4.0);
  ASSERT_EQ(c.scenario.sim.faults.windows.size(), 1u);
  const auto& w = c.scenario.sim.faults.windows[0];
  EXPECT_DOUBLE_EQ(w.start_s, 10.0 / 4.0);
  EXPECT_DOUBLE_EQ(w.duration_s, 6.0 / 4.0);
  EXPECT_DOUBLE_EQ(w.magnitude, 1.0);  // protocol quantity: never scaled
  ASSERT_EQ(c.scenario.sim.faults.random.size(), 1u);
  const auto& r = c.scenario.sim.faults.random[0];
  EXPECT_DOUBLE_EQ(r.mean_gap_s, 30.0 / 4.0);
  EXPECT_DOUBLE_EQ(r.duration_lo_s, 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(r.magnitude_lo, 10.0);
  EXPECT_DOUBLE_EQ(r.magnitude_hi, 20.0);
}

TEST(ScenarioCompile, LayoutPresetsShapeDeployment) {
  scn::ScenarioSpec spec;
  spec.name = "l";
  spec.description = "layout probe";
  spec.route = rem::trace::Route::kLowMobilityLA;
  spec.speed_kmh = 30.0;
  spec.layout = scn::Layout::kDenseSmallCell;
  const auto dense = scn::compile(spec);
  EXPECT_LE(dense.scenario.deployment.site_spacing_mean_m, 220.0);
  EXPECT_EQ(dense.scenario.deployment.tx_power_dbm, 30.0);
  EXPECT_EQ(dense.scenario.deployment.holes_per_km, 0.0);
  ASSERT_EQ(dense.scenario.deployment.secondary_bandwidths_hz.size(), 2u);

  spec.layout = scn::Layout::kUrbanCanyon;
  const auto canyon = scn::compile(spec);
  EXPECT_LE(canyon.scenario.deployment.site_spacing_mean_m, 600.0);
  EXPECT_EQ(canyon.scenario.propagation.pathloss_exponent, 3.8);
  EXPECT_GT(canyon.scenario.deployment.primary_missing_prob,
            dense.scenario.deployment.primary_missing_prob);
}

// --- compiled fleet determinism across worker threads ---------------------

TEST(ScenarioCompile, CompiledFleetRunBitIdenticalAcrossOneTwoEightThreads) {
  scn::ScenarioSpec spec;
  spec.name = "det";
  spec.description = "thread determinism probe";
  spec.route = rem::trace::Route::kBeijingTaiyuan;
  spec.speed_kmh = 250.0;
  spec.duration_s = 20.0;
  spec.ue_count = 4;
  spec.ue_speed_lo_kmh = 200.0;
  spec.ue_speed_hi_kmh = 300.0;
  rem::sim::FaultWindow w;
  w.kind = rem::sim::FaultKind::kSignalingLoss;
  w.start_s = 5.0;
  w.duration_s = 4.0;
  w.magnitude = 0.6;
  spec.faults = {w};
  const auto compiled = scn::compile(spec);

  rem::phy::LogisticBlerModel bler;
  rem::bench::FleetScenarioRunOptions opts;
  opts.record_events = true;
  opts.context = "the determinism probe";
  const std::vector<std::uint64_t> seeds = {61, 62, 63, 64};
  const auto batch = [&](std::size_t threads) {
    std::vector<rem::sim::FleetResult> out(seeds.size());
    rem::common::parallel_for(seeds.size(), threads, [&](std::size_t i) {
      out[i] = rem::bench::run_fleet_scenario(compiled.scenario, seeds[i],
                                              bler, opts);
    });
    return out;
  };
  const auto at1 = batch(1);
  const auto at2 = batch(2);
  const auto at8 = batch(8);
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seeds[i]));
    ASSERT_EQ(at1[i].per_ue.size(), 4u);
    for (const auto* other : {&at2[i], &at8[i]}) {
      ASSERT_EQ(other->per_ue.size(), at1[i].per_ue.size());
      EXPECT_EQ(other->aggregate.handovers, at1[i].aggregate.handovers);
      EXPECT_EQ(other->aggregate.failures, at1[i].aggregate.failures);
      EXPECT_EQ(other->aggregate.events.size(),
                at1[i].aggregate.events.size());
      EXPECT_EQ(rem::testkit::hash_event_log(other->aggregate.events),
                rem::testkit::hash_event_log(at1[i].aggregate.events));
      for (std::size_t k = 0; k < at1[i].per_ue.size(); ++k)
        EXPECT_EQ(rem::testkit::hash_event_log(other->per_ue[k].events),
                  rem::testkit::hash_event_log(at1[i].per_ue[k].events));
    }
    EXPECT_GT(at1[i].aggregate.handovers, 0);
  }
}

}  // namespace
