#include "common/rng.hpp"
#include "phy/bler_model.hpp"

#include <gtest/gtest.h>

namespace rp = rem::phy;

TEST(LogisticCurve, ShapeAndLimits) {
  rp::LogisticCurve c{5.0, 1.0, 0.02};
  EXPECT_NEAR(c.eval(5.0), 0.02 + 0.98 * 0.5, 1e-9);  // midpoint
  EXPECT_GT(c.eval(-20.0), 0.99);                      // saturates at 1
  EXPECT_NEAR(c.eval(40.0), 0.02, 1e-3);               // floor remains
}

TEST(LogisticCurve, MonotoneDecreasing) {
  rp::LogisticCurve c{3.0, 0.8, 0.0};
  double prev = 1.1;
  for (double snr = -20.0; snr <= 30.0; snr += 0.5) {
    const double b = c.eval(snr);
    EXPECT_LE(b, prev + 1e-12);
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    prev = b;
  }
}

TEST(LogisticBlerModel, DefaultOrderingMatchesFig10) {
  rp::LogisticBlerModel m;
  // At moderate SNR under high Doppler, OTFS beats OFDM clearly.
  for (double snr : {4.0, 8.0, 12.0}) {
    EXPECT_LT(m.bler(rp::Waveform::kOTFS, rp::DopplerRegime::kHigh, snr),
              m.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh, snr))
        << snr;
  }
  // OFDM keeps an error floor at high Doppler; OTFS does not.
  EXPECT_GT(m.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh, 30.0),
            0.01);
  EXPECT_LT(m.bler(rp::Waveform::kOTFS, rp::DopplerRegime::kHigh, 30.0),
            0.01);
  // Low Doppler: both decent, within a couple dB.
  EXPECT_LT(m.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kLow, 15.0),
            0.05);
}

TEST(LogisticBlerModel, SetCurveOverrides) {
  rp::LogisticBlerModel m;
  m.set_curve(rp::Waveform::kOFDM, rp::DopplerRegime::kLow,
              {0.0, 100.0, 0.0});
  EXPECT_LT(m.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kLow, 1.0),
            1e-6);
  EXPECT_GT(m.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kLow, -1.0),
            1.0 - 1e-6);
}

TEST(TableBlerModel, InterpolatesAndClamps) {
  rp::TableBlerModel m;
  m.set_points(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh,
               {{0.0, 0.8, 100}, {10.0, 0.2, 100}, {20.0, 0.05, 100}});
  EXPECT_NEAR(m.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh, 5.0),
              0.5, 1e-9);
  EXPECT_NEAR(m.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh, 15.0),
              0.125, 1e-9);
  // Clamped at the ends.
  EXPECT_NEAR(m.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh, -10.0),
              0.8, 1e-9);
  EXPECT_NEAR(m.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh, 50.0),
              0.05, 1e-9);
}

TEST(TableBlerModel, MissingCurveIsConservative) {
  rp::TableBlerModel m;
  EXPECT_DOUBLE_EQ(
      m.bler(rp::Waveform::kOTFS, rp::DopplerRegime::kLow, 20.0), 1.0);
}

TEST(TableBlerModel, UnsortedPointsAccepted) {
  rp::TableBlerModel m;
  m.set_points(rp::Waveform::kOTFS, rp::DopplerRegime::kLow,
               {{10.0, 0.1, 10}, {0.0, 0.9, 10}});
  EXPECT_NEAR(m.bler(rp::Waveform::kOTFS, rp::DopplerRegime::kLow, 5.0),
              0.5, 1e-9);
}

TEST(CalibrateBlerModel, SmokeTestMatchesLinkSim) {
  // A tiny calibration run: the resulting table must show the OTFS > OFDM
  // ordering at high Doppler and be monotone-ish in SNR.
  rem::common::Rng rng(3);
  const auto model = rp::calibrate_bler_model(
      rp::Numerology::lte(12, 14), rp::Modulation::kQPSK,
      {-5.0, 5.0, 15.0}, 25, rng);
  const double ofdm_mid =
      model.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh, 5.0);
  const double otfs_mid =
      model.bler(rp::Waveform::kOTFS, rp::DopplerRegime::kHigh, 5.0);
  EXPECT_LE(otfs_mid, ofdm_mid + 0.1);
  EXPECT_GT(model.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh,
                       -5.0),
            model.bler(rp::Waveform::kOFDM, rp::DopplerRegime::kHigh,
                       15.0));
}
