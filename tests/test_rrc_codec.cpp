#include "common/rng.hpp"
#include "core/rrc_codec.hpp"

#include <gtest/gtest.h>

namespace rc = rem::core;

namespace {
rc::MeasurementReport sample_report() {
  rc::MeasurementReport r;
  r.report_id = 4711;
  r.serving_cell = 17;
  r.serving_metric_db = -3.25;
  r.neighbors = {{18, 2.5, false}, {42, -1.75, true}, {7, 12.0, true}};
  return r;
}

rc::HandoverCommand sample_command() {
  rc::HandoverCommand c;
  c.command_id = 99;
  c.source_cell = 17;
  c.target_cell = 42;
  c.target_channel = 2452;
  c.new_crnti = 0xBEEF;
  c.time_to_execute_s = 0.0123;
  return c;
}
}  // namespace

TEST(RrcCodec, ReportRoundTrip) {
  const auto r = sample_report();
  const auto back = rc::decode_report(rc::encode(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, r);
}

TEST(RrcCodec, CommandRoundTrip) {
  const auto c = sample_command();
  const auto back = rc::decode_command(rc::encode(c));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->command_id, c.command_id);
  EXPECT_EQ(back->target_cell, c.target_cell);
  EXPECT_EQ(back->target_channel, c.target_channel);
  EXPECT_EQ(back->new_crnti, c.new_crnti);
  EXPECT_NEAR(back->time_to_execute_s, c.time_to_execute_s, 1e-4);
}

TEST(RrcCodec, MetricQuantizedToQuarterDb) {
  rc::MeasurementReport r = sample_report();
  r.serving_metric_db = -97.13;
  const auto back = rc::decode_report(rc::encode(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_NEAR(back->serving_metric_db, -97.13, 0.125);
  EXPECT_NEAR(std::remainder(back->serving_metric_db, 0.25), 0.0, 1e-9);
}

TEST(RrcCodec, PeekType) {
  EXPECT_EQ(rc::peek_type(rc::encode(sample_report())),
            rc::MessageType::kMeasurementReport);
  EXPECT_EQ(rc::peek_type(rc::encode(sample_command())),
            rc::MessageType::kHandoverCommand);
  EXPECT_EQ(rc::peek_type({}), rc::MessageType::kUnknown);
  EXPECT_EQ(rc::peek_type({0x00}), rc::MessageType::kUnknown);
}

TEST(RrcCodec, TruncationRejected) {
  auto wire = rc::encode(sample_report());
  for (std::size_t cut = 1; cut < wire.size(); ++cut) {
    rc::Bytes partial(wire.begin(),
                      wire.begin() + static_cast<long>(cut));
    EXPECT_FALSE(rc::decode_report(partial).has_value()) << "cut=" << cut;
  }
}

TEST(RrcCodec, TrailingGarbageRejected) {
  auto wire = rc::encode(sample_command());
  wire.push_back(0x55);
  EXPECT_FALSE(rc::decode_command(wire).has_value());
}

TEST(RrcCodec, WrongMagicRejected) {
  auto wire = rc::encode(sample_report());
  wire[0] ^= 0xFF;
  EXPECT_FALSE(rc::decode_report(wire).has_value());
}

TEST(RrcCodec, RandomCorruptionNeverCrashes) {
  // Decoding must be total: arbitrary bit flips either round-trip to a
  // valid message or return nullopt — never UB. (The overlay's block
  // errors land here.)
  rem::common::Rng rng(7);
  const auto base = rc::encode(sample_report());
  for (int trial = 0; trial < 2000; ++trial) {
    auto wire = base;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 8));
    for (int f = 0; f < flips; ++f) {
      const auto byte = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(wire.size()) - 1));
      wire[byte] ^= static_cast<std::uint8_t>(
          1u << rng.uniform_int(0, 7));
    }
    (void)rc::decode_report(wire);   // must not crash
    (void)rc::decode_command(wire);  // must not crash
  }
  SUCCEED();
}

TEST(RrcCodec, NeighborListCapped) {
  rc::MeasurementReport r;
  r.neighbors.resize(100);  // above the wire cap of 64
  const auto back = rc::decode_report(rc::encode(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->neighbors.size(), 64u);
}

TEST(RrcCodec, EmptyNeighborsOk) {
  rc::MeasurementReport r;
  r.report_id = 1;
  const auto back = rc::decode_report(rc::encode(r));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->neighbors.empty());
}
