// Differential oracle: LegacyManager vs RemManager on bit-identical
// channel/fault timelines (same seed -> same deployment, fading, and
// fault schedule), asserting the paper's dominance relations as
// *properties over a seed sweep* rather than two hand-picked examples:
//   - REM's failure ratio never exceeds legacy's on any seed (§7.1);
//   - REM's deployed coordinated A3 offsets satisfy Theorem 2 exactly
//     (so no *policy-conflict* loop is satisfiable), and its realized
//     persistent ping-ponging never exceeds legacy's over the sweep;
//   - the verdicts are identical at any runner thread count.
// Widen the sweep with REM_TEST_SEEDS (count or comma list).
#include "mobility/conflict.hpp"
#include "scenario_runner.hpp"
#include "testkit/golden.hpp"
#include "testkit/seeds.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using rem::bench::SeedRunResult;

/// Persistent ping-pong episodes (>= 2 consecutive loop handovers) from
/// an event log, mirroring the simulator's loop-window bookkeeping.
int persistent_loops(const rem::sim::EventLog& log, double window_s) {
  std::vector<std::pair<double, int>> recent;
  bool in_episode = false;
  int run_length = 0, persistent = 0;
  for (const auto& e : log) {
    if (e.kind == rem::sim::EventKind::kReestablished) {
      recent.push_back({e.t_s, e.serving_cell});
      continue;
    }
    if (e.kind != rem::sim::EventKind::kHandoverComplete) continue;
    bool is_loop = false;
    for (const auto& [ts, idx] : recent)
      if (e.t_s - ts <= window_s && idx == e.target_cell) {
        is_loop = true;
        break;
      }
    recent.push_back({e.t_s, e.target_cell});
    while (!recent.empty() && e.t_s - recent.front().first > window_s)
      recent.erase(recent.begin());
    if (is_loop) {
      if (!in_episode) {
        in_episode = true;
        run_length = 1;
      } else if (++run_length == 2) {
        ++persistent;
      }
    } else {
      in_episode = false;
      run_length = 0;
    }
  }
  return persistent;
}

std::vector<SeedRunResult> sweep(rem::trace::Route route, double speed_kmh,
                                 double duration_s,
                                 const std::vector<std::uint64_t>& seeds,
                                 std::size_t threads) {
  rem::phy::LogisticBlerModel bler;
  std::vector<SeedRunResult> out(seeds.size());
  std::vector<std::string> errors(seeds.size());
  rem::common::parallel_for(seeds.size(), threads, [&](std::size_t i) {
    rem::bench::SeedRunOptions opts;
    opts.record_events = true;  // loop analysis needs the event stream
    try {
      out[i] = rem::bench::run_seed(route, speed_kmh, duration_s, seeds[i],
                                    /*run_rem=*/true, bler, opts);
    } catch (const std::exception& e) {
      errors[i] = e.what();
    }
  });
  for (std::size_t i = 0; i < seeds.size(); ++i)
    EXPECT_TRUE(errors[i].empty())
        << "seed " << seeds[i] << ": " << errors[i];
  return out;
}

class DifferentialOracle
    : public ::testing::TestWithParam<rem::trace::Route> {};

TEST_P(DifferentialOracle, RemDominatesLegacyOnEverySeed) {
  const auto route = GetParam();
  const double speed =
      route == rem::trace::Route::kLowMobilityLA ? 60.0 : 300.0;
  const auto seeds =
      rem::testkit::property_seeds({1, 2, 3, 4, 5, 6, 7, 8});
  const auto runs = sweep(route, speed, 200.0, seeds,
                          rem::bench::bench_threads());

  const double window = rem::sim::SimConfig{}.loop_window_s;
  int legacy_failures = 0, rem_failures = 0;
  int legacy_persistent = 0, rem_persistent = 0;
  int legacy_static_conflicts = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seeds[i]));
    const auto& r = runs[i];
    ASSERT_TRUE(r.has_rem);
    // Dominance: REM never fails more often than legacy on the identical
    // timeline.
    EXPECT_LE(r.rem.failure_ratio(), r.legacy.failure_ratio())
        << "rem " << r.rem.failures << "/" << r.rem.handovers
        << " vs legacy " << r.legacy.failures << "/" << r.legacy.handovers;
    legacy_failures += r.legacy.failures;
    rem_failures += r.rem.failures;
    legacy_persistent += persistent_loops(r.legacy.events, window);
    rem_persistent += persistent_loops(r.rem.events, window);
    legacy_static_conflicts += r.total_conflicts;
  }
  // Theorem 2 removes *policy-conflict* loops, not fading: deep fades can
  // still bounce a client between two cells for a couple of handovers
  // (observed run lengths up to 3 for REM vs 7 for legacy). The realized
  // dominance relation is therefore differential: over the sweep REM's
  // persistent ping-ponging never exceeds that of legacy's conflicted
  // policy set, which analyzably carries conflicts on every seed.
  EXPECT_GT(legacy_static_conflicts, 0);
  EXPECT_LE(rem_persistent, legacy_persistent);
  // Aggregate separation: over the whole sweep REM strictly improves.
  EXPECT_LT(rem_failures, legacy_failures);
}

TEST(DifferentialOracle, DeployedRemOffsetsSatisfyTheorem2) {
  // The exact (static) half of "loop-free after repair": the uniform
  // coordinated offset REM deploys satisfies the Theorem 2 precondition
  // for every (i, j, k) triple, so no pure-A3 persistent loop is even
  // satisfiable — what the sweep above observes dynamically.
  const double delta = rem::core::RemConfig{}.a3_offset_db;
  ASSERT_GE(delta, 0.0);
  const std::size_t n = 8;
  std::vector<std::vector<double>> deltas(n, std::vector<double>(n, delta));
  EXPECT_TRUE(rem::mobility::check_theorem2(deltas).empty());
  // And for any cycle drawn from that matrix the offset sum is
  // non-negative, i.e. the loop region is empty (proof of Theorem 2).
  EXPECT_FALSE(rem::mobility::a3_cycle_satisfiable(
      std::vector<double>(4, delta)));
}

INSTANTIATE_TEST_SUITE_P(
    Routes, DifferentialOracle,
    ::testing::Values(rem::trace::Route::kLowMobilityLA,
                      rem::trace::Route::kBeijingShanghai),
    [](const ::testing::TestParamInfo<rem::trace::Route>& info) {
      switch (info.param) {
        case rem::trace::Route::kLowMobilityLA: return std::string("LA");
        case rem::trace::Route::kBeijingTaiyuan: return std::string("BT");
        case rem::trace::Route::kBeijingShanghai: return std::string("BS");
      }
      return std::string("unknown");
    });

TEST(DifferentialOracle, VerdictsAreThreadCountInvariant) {
  const auto route = rem::trace::Route::kBeijingTaiyuan;
  const std::vector<std::uint64_t> seeds = {3, 5, 11};
  const auto base = sweep(route, 250.0, 120.0, seeds, 1);
  for (const std::size_t threads : {2UL, 8UL}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto other = sweep(route, 250.0, 120.0, seeds, threads);
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      // Bit-identical per-seed stats -> identical differential verdicts.
      EXPECT_EQ(base[i].legacy.failures, other[i].legacy.failures);
      EXPECT_EQ(base[i].legacy.handovers, other[i].legacy.handovers);
      EXPECT_EQ(base[i].rem.failures, other[i].rem.failures);
      EXPECT_EQ(base[i].rem.handovers, other[i].rem.handovers);
      EXPECT_EQ(base[i].rem.events.size(), other[i].rem.events.size());
      EXPECT_EQ(base[i].legacy.mean_throughput_bps,
                other[i].legacy.mean_throughput_bps);
      EXPECT_EQ(base[i].rem.mean_throughput_bps,
                other[i].rem.mean_throughput_bps);
    }
  }
}

TEST(DifferentialOracle, FaultedTimelinesPreserveDominanceInAggregate) {
  // Under the mixed fault schedule both managers suffer; REM must still
  // come out no worse in aggregate over the sweep. (Per-seed dominance is
  // not asserted here: a fault window can land on REM's handover and miss
  // legacy's.)
  rem::phy::LogisticBlerModel bler;
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  int legacy_failures = 0, rem_failures = 0;
  int legacy_handovers = 0, rem_handovers = 0;
  for (const auto seed : seeds) {
    rem::bench::SeedRunOptions opts;
    opts.faults = rem::testkit::golden_fault_preset("mixed", 150.0);
    const auto r = rem::bench::run_seed(rem::trace::Route::kBeijingShanghai,
                                        330.0, 150.0, seed, true, bler,
                                        opts);
    legacy_failures += r.legacy.failures;
    rem_failures += r.rem.failures;
    legacy_handovers += r.legacy.handovers;
    rem_handovers += r.rem.handovers;
  }
  const auto ratio = [](int f, int h) {
    return h + f > 0 ? static_cast<double>(f) / (h + f) : 0.0;
  };
  EXPECT_LE(ratio(rem_failures, rem_handovers),
            ratio(legacy_failures, legacy_handovers));
}

}  // namespace
