// Cascade-resilience tests (satellite of the correlated-fault PR): the
// per-target circuit breaker FSM at unit level — trip after *exactly* K
// consecutive failures, the half-open probe's success and failure paths,
// pure-arithmetic cool-down deadlines — plus simulator-level pins: breaker
// events agree with stats counters and respect the cool-down under a
// cascade storm, the tick-loop and event-queue engines produce
// bit-identical breaker timelines, and storm runs merged in seed order are
// bit-identical at 1, 2, and 8 worker threads.
#include "core/circuit_breaker.hpp"
#include "fleet_runner.hpp"

#include "common/thread_pool.hpp"
#include "testkit/golden.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace {

namespace core = rem::core;
namespace sim = rem::sim;
using rem::bench::FleetRunOptions;
using rem::bench::run_fleet_seed;

// ---------- Breaker FSM unit level ----------

TEST(CircuitBreaker, TripsAfterExactlyKConsecutiveFailures) {
  core::CircuitBreaker br(3, 2.0);
  // K-1 failures: still closed, still admitting preparations.
  EXPECT_FALSE(br.record_failure(1.0));
  EXPECT_FALSE(br.record_failure(2.0));
  EXPECT_EQ(br.consecutive_failures(), 2);
  EXPECT_EQ(br.state(), core::BreakerState::kClosed);
  EXPECT_TRUE(br.allow(2.5));
  // The K-th consecutive failure trips — record_failure reports it.
  EXPECT_TRUE(br.record_failure(3.0));
  EXPECT_EQ(br.state(), core::BreakerState::kOpen);
  EXPECT_FALSE(br.allow(3.5));
  EXPECT_TRUE(br.refuses(3.5));
}

TEST(CircuitBreaker, SuccessResetsTheConsecutiveStreak) {
  core::CircuitBreaker br(2, 2.0);
  EXPECT_FALSE(br.record_failure(1.0));
  EXPECT_FALSE(br.record_success());  // closed: nothing to close
  EXPECT_EQ(br.consecutive_failures(), 0);
  // The streak restarted, so one more failure is not enough again.
  EXPECT_FALSE(br.record_failure(2.0));
  EXPECT_TRUE(br.record_failure(3.0));
  EXPECT_EQ(br.state(), core::BreakerState::kOpen);
}

TEST(CircuitBreaker, OpenAdmitsExactlyOneProbeAfterCooldown) {
  core::CircuitBreaker br(1, 2.0);
  EXPECT_TRUE(br.record_failure(10.0));
  // Refused for the whole cool-down, including the last instant before it.
  EXPECT_FALSE(br.allow(10.0));
  EXPECT_FALSE(br.allow(11.999));
  // At the deadline: half-open, the caller becomes the probe...
  EXPECT_TRUE(br.allow(12.0));
  EXPECT_EQ(br.state(), core::BreakerState::kHalfOpen);
  EXPECT_TRUE(br.probe_in_flight());
  EXPECT_TRUE(br.engaged());
  EXPECT_FALSE(br.refuses(12.0));  // probe-eligible, not refused
  // ...and nobody else gets in until the probe resolves.
  EXPECT_FALSE(br.allow(12.5));
}

TEST(CircuitBreaker, HalfOpenProbeSuccessCloses) {
  core::CircuitBreaker br(1, 1.5);
  EXPECT_TRUE(br.record_failure(5.0));
  EXPECT_TRUE(br.allow(6.5));
  // The probe's ack closes the breaker and record_success reports it.
  EXPECT_TRUE(br.record_success());
  EXPECT_EQ(br.state(), core::BreakerState::kClosed);
  EXPECT_FALSE(br.probe_in_flight());
  EXPECT_TRUE(br.allow(6.6));
  EXPECT_FALSE(br.engaged());
}

TEST(CircuitBreaker, HalfOpenProbeFailureRetripsWithFreshCooldown) {
  core::CircuitBreaker br(3, 2.0);
  EXPECT_FALSE(br.record_failure(0.0));
  EXPECT_FALSE(br.record_failure(0.5));
  EXPECT_TRUE(br.record_failure(1.0));  // K-th: open, deadline 3.0
  EXPECT_TRUE(br.allow(3.0));           // probe
  // A single probe failure re-trips immediately — no K-streak in half-open
  // — and the cool-down restarts from the failure instant.
  EXPECT_TRUE(br.record_failure(3.4));
  EXPECT_EQ(br.state(), core::BreakerState::kOpen);
  EXPECT_EQ(br.reopen_at_s(), 5.4);
  EXPECT_FALSE(br.allow(5.3));
  EXPECT_TRUE(br.allow(5.4));  // next probe
}

TEST(CircuitBreaker, DisabledThresholdNeverLeavesClosed) {
  core::CircuitBreaker br(0, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(br.record_failure(i));
  EXPECT_EQ(br.state(), core::BreakerState::kClosed);
  EXPECT_TRUE(br.allow(100.0));
  EXPECT_FALSE(br.refuses(100.0));
  // Default-constructed breakers are disabled too.
  core::CircuitBreaker off;
  EXPECT_FALSE(off.record_failure(1.0));
  EXPECT_TRUE(off.allow(1.0));
}

TEST(CircuitBreaker, CooldownDeadlineIsExactArithmetic) {
  // The deadline is now + cooldown in exact double arithmetic — no clock
  // reads, no rounding — so breaker timelines replay bit-identically.
  for (double t : {0.0, 17.25, 123.456}) {
    core::CircuitBreaker br(1, 1.5);
    EXPECT_TRUE(br.record_failure(t));
    EXPECT_EQ(br.reopen_at_s(), t + 1.5);
    EXPECT_FALSE(br.allow(t + 1.5 - 1e-12));
    EXPECT_TRUE(br.allow(t + 1.5));
  }
  // Negative cool-downs clamp to zero: trip, then immediately probe-able.
  core::CircuitBreaker clamp(1, -3.0);
  EXPECT_TRUE(clamp.record_failure(2.0));
  EXPECT_EQ(clamp.reopen_at_s(), 2.0);
  EXPECT_TRUE(clamp.allow(2.0));
}

// ---------- Simulator level ----------

/// Cascade-storm fleet options mirroring the golden corpus's
/// cascade_storm arming: crash + cascade faults, the full resilience
/// stack on, and single-slot stations so admission busy-rejects reliably
/// drive the breaker through its trip/probe/close cycle.
FleetRunOptions storm_opts(double duration_s, int fleet_size) {
  FleetRunOptions opts;
  opts.fleet_size = fleet_size;
  opts.record_events = true;
  opts.faults = rem::testkit::golden_fault_preset("cascade_storm", duration_s);
  opts.load_ad_staleness_s = 1.0;
  opts.breaker_trip_k = 2;
  opts.breaker_cooldown_s = 1.5;
  opts.storm_jitter_frac = 0.5;
  sim::BsCapacityConfig cap;
  cap.slots = 1;
  cap.queue_capacity = 4;
  cap.admission_load_threshold = 0.5;
  opts.bs_capacity = cap;
  return opts;
}

int count_events(const sim::EventLog& events, sim::EventKind kind) {
  int n = 0;
  for (const auto& e : events)
    if (e.kind == kind) ++n;
  return n;
}

TEST(CascadeSim, BreakerEventsAgreeWithCountersAndCooldown) {
  // 120 s: long enough for a tripped-but-alive cell to stay in candidate
  // range at 300 km/h, so breaker_skips accrues (at 60 s every tripped
  // target is a crashed cell, which candidate selection excludes anyway).
  const auto opts = storm_opts(120.0, 6);
  const auto r = run_fleet_seed(rem::trace::Route::kBeijingShanghai, 300.0,
                                120.0, 18, rem::phy::LogisticBlerModel{}, opts);
  const auto& agg = r.aggregate;
  ASSERT_GT(agg.breaker_trips, 0);
  ASSERT_GT(agg.breaker_probes, 0);
  // Stats counters and the event log tell the same story.
  EXPECT_EQ(count_events(agg.events, sim::EventKind::kBreakerTrip),
            agg.breaker_trips);
  EXPECT_EQ(count_events(agg.events, sim::EventKind::kBreakerProbe),
            agg.breaker_probes);
  EXPECT_EQ(count_events(agg.events, sim::EventKind::kBreakerClose),
            agg.breaker_closes);
  // FSM accounting: every probe follows a trip (one probe per cool-down),
  // every close resolves a probe.
  EXPECT_LE(agg.breaker_probes, agg.breaker_trips);
  EXPECT_LE(agg.breaker_closes, agg.breaker_probes);
  // Each probe waited out the full cool-down after the most recent trip of
  // the same UE toward the same target.
  int checked = 0;
  for (std::size_t i = 0; i < agg.events.size(); ++i) {
    const auto& probe = agg.events[i];
    if (probe.kind != sim::EventKind::kBreakerProbe) continue;
    double last_trip = -1.0;
    for (std::size_t j = 0; j < i; ++j) {
      const auto& e = agg.events[j];
      if (e.kind == sim::EventKind::kBreakerTrip && e.ue == probe.ue &&
          e.target_cell == probe.target_cell)
        last_trip = e.t_s;
    }
    ASSERT_GE(last_trip, 0.0) << "probe without a preceding trip";
    EXPECT_GE(probe.t_s - last_trip, opts.breaker_cooldown_s - 1e-9);
    ++checked;
  }
  EXPECT_EQ(checked, agg.breaker_probes);
  // The storm actually stormed: cascade jobs landed and breakers hid
  // tripped targets from candidate selection at least once.
  EXPECT_GT(agg.cascade_activations, 0);
  EXPECT_GT(agg.cascade_jobs_injected, 0);
  EXPECT_GT(agg.breaker_skips, 0);
}

/// Single-UE storm run under an explicit engine, with the cascade
/// resilience knobs applied (test_fleet.cpp's runner predates them).
sim::SimStats run_single_storm(std::uint64_t seed, bool use_rem,
                               const FleetRunOptions& opts, double duration_s,
                               sim::SimEngine engine) {
  auto sc = rem::trace::make_scenario(rem::trace::Route::kBeijingShanghai,
                                      300.0, duration_s);
  sc.sim.faults = opts.faults;
  sc.sim.record_events = true;
  if (opts.bs_capacity) sc.sim.bs_capacity = *opts.bs_capacity;
  sc.sim.load_ad_staleness_s = opts.load_ad_staleness_s;
  sc.sim.breaker_trip_k = opts.breaker_trip_k;
  sc.sim.breaker_cooldown_s = opts.breaker_cooldown_s;
  sc.sim.storm_jitter_frac = opts.storm_jitter_frac;
  sc.sim.engine = engine;

  rem::common::Rng rng(seed);
  auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto holes = sim::make_hole_segments(sc.deployment, rng);
  sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies =
      rem::trace::synthesize_policies(cells, sc.policy_mix, rng);
  core::LegacyConfig lc;
  lc.policies = policies;
  lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
  lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;
  rem::common::Rng mgr_rng = rng.fork();
  rem::common::Rng sim_rng = rng.fork();
  rem::phy::LogisticBlerModel bler;
  sim::Simulator s(env, sc.sim, bler, std::move(sim_rng));
  if (use_rem) {
    core::RemManager m(core::RemConfig{}, mgr_rng.fork());
    return s.run(m);
  }
  core::LegacyManager m(lc);
  return s.run(m);
}

/// Bit-exact equality of the cascade/breaker surface plus the headline
/// stats and the full event log.
void expect_cascade_eq(const sim::SimStats& a, const sim::SimStats& b) {
#define REM_EQ(field) EXPECT_EQ(a.field, b.field) << #field
  REM_EQ(handovers);
  REM_EQ(failures);
  REM_EQ(prep_requests);
  REM_EQ(prep_failures);
  REM_EQ(admission_rejects);
  REM_EQ(cascade_activations);
  REM_EQ(cascade_jobs_injected);
  REM_EQ(breaker_trips);
  REM_EQ(breaker_probes);
  REM_EQ(breaker_closes);
  REM_EQ(breaker_skips);
  REM_EQ(load_ads_received);
  REM_EQ(load_ad_age_max_s);
  REM_EQ(storm_jitter_applied);
#undef REM_EQ
  EXPECT_EQ(a.events.size(), b.events.size());
  EXPECT_EQ(rem::testkit::hash_event_log(a.events),
            rem::testkit::hash_event_log(b.events));
}

TEST(CascadeSim, BreakerTimelineBitIdenticalAcrossEngines) {
  const auto opts = storm_opts(120.0, 1);
  for (bool use_rem : {false, true}) {
    SCOPED_TRACE(use_rem ? "rem" : "legacy");
    const auto ticked =
        run_single_storm(18, use_rem, opts, 120.0, sim::SimEngine::kTickLoop);
    const auto queued =
        run_single_storm(18, use_rem, opts, 120.0, sim::SimEngine::kEventQueue);
    expect_cascade_eq(queued, ticked);
    // The comparison is about breaker timelines, so make sure there is one
    // (client-driven REM preps trip reliably; legacy trips are rare on a
    // single UE, so only the bit-identity is asserted there).
    if (use_rem) EXPECT_GT(queued.breaker_trips, 0);
  }
}

TEST(CascadeSim, StormRunsBitIdenticalAcrossOneTwoEightThreads) {
  const auto opts = storm_opts(40.0, 4);
  const std::vector<std::uint64_t> seeds = {61, 62, 63, 64, 65, 66};
  const auto batch = [&](std::size_t threads) {
    std::vector<sim::FleetResult> out(seeds.size());
    rem::phy::LogisticBlerModel bler;
    rem::common::parallel_for(seeds.size(), threads, [&](std::size_t i) {
      out[i] = run_fleet_seed(rem::trace::Route::kBeijingTaiyuan, 250.0, 40.0,
                              seeds[i], bler, opts);
    });
    return out;
  };
  const auto at1 = batch(1);
  const auto at2 = batch(2);
  const auto at8 = batch(8);
  int trips = 0;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    SCOPED_TRACE("seed " + std::to_string(seeds[i]));
    expect_cascade_eq(at2[i].aggregate, at1[i].aggregate);
    expect_cascade_eq(at8[i].aggregate, at1[i].aggregate);
    for (std::size_t k = 0; k < at1[i].per_ue.size(); ++k) {
      expect_cascade_eq(at2[i].per_ue[k], at1[i].per_ue[k]);
      expect_cascade_eq(at8[i].per_ue[k], at1[i].per_ue[k]);
    }
    trips += at1[i].aggregate.breaker_trips;
  }
  // Cool-down determinism is only proven if breakers actually cycled.
  EXPECT_GT(trips, 0);
}

}  // namespace
