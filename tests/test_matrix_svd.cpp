#include "common/rng.hpp"
#include "dsp/matrix.hpp"
#include "dsp/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>

using rem::dsp::Matrix;
using rem::dsp::cd;

namespace {
Matrix random_matrix(std::size_t r, std::size_t c, rem::common::Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.complex_gaussian(1.0);
  return m;
}
}  // namespace

TEST(Matrix, IdentityProduct) {
  rem::common::Rng rng(1);
  const Matrix a = random_matrix(4, 4, rng);
  const Matrix i = Matrix::identity(4);
  EXPECT_LT(Matrix::max_abs_diff(a * i, a), 1e-12);
  EXPECT_LT(Matrix::max_abs_diff(i * a, a), 1e-12);
}

TEST(Matrix, AdjointInvolution) {
  rem::common::Rng rng(2);
  const Matrix a = random_matrix(3, 5, rng);
  EXPECT_LT(Matrix::max_abs_diff(a.adjoint().adjoint(), a), 1e-12);
}

TEST(Matrix, ProductShapeMismatchThrows) {
  Matrix a(2, 3), b(4, 2);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, FrobeniusNorm) {
  Matrix a(2, 2);
  a(0, 0) = cd(3, 0);
  a(1, 1) = cd(0, 4);
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(Matrix, DiagonalFactory) {
  const Matrix d = Matrix::diagonal({1, 2, 3}, 4, 3);
  EXPECT_EQ(d.rows(), 4u);
  EXPECT_EQ(d.cols(), 3u);
  EXPECT_EQ(d(1, 1), cd(2, 0));
  EXPECT_EQ(d(3, 0), cd(0, 0));
}

class SvdShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SvdShapes, ReconstructionAndOrthonormality) {
  const auto [r, c] = GetParam();
  rem::common::Rng rng(r * 100 + c);
  const Matrix a = random_matrix(r, c, rng);
  const auto s = rem::dsp::svd(a);

  // Reconstruction.
  EXPECT_LT(Matrix::max_abs_diff(s.reconstruct(), a), 1e-8)
      << r << "x" << c;

  // Orthonormal columns of U and V.
  const Matrix utu = s.u.adjoint() * s.u;
  const Matrix vtv = s.v.adjoint() * s.v;
  EXPECT_LT(Matrix::max_abs_diff(utu, Matrix::identity(utu.rows())), 1e-8);
  EXPECT_LT(Matrix::max_abs_diff(vtv, Matrix::identity(vtv.rows())), 1e-8);

  // Singular values descending and non-negative.
  for (std::size_t i = 1; i < s.sigma.size(); ++i)
    EXPECT_LE(s.sigma[i], s.sigma[i - 1] + 1e-12);
  for (double v : s.sigma) EXPECT_GE(v, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapes,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(4, 4),
                      std::make_pair<std::size_t, std::size_t>(8, 3),
                      std::make_pair<std::size_t, std::size_t>(3, 8),
                      std::make_pair<std::size_t, std::size_t>(12, 14),
                      std::make_pair<std::size_t, std::size_t>(16, 16),
                      std::make_pair<std::size_t, std::size_t>(32, 7),
                      std::make_pair<std::size_t, std::size_t>(1, 5),
                      std::make_pair<std::size_t, std::size_t>(5, 1)));

TEST(Svd, LowRankDetection) {
  // Build a rank-2 matrix; the SVD should find exactly 2 significant
  // singular values.
  rem::common::Rng rng(5);
  const Matrix u = random_matrix(10, 2, rng);
  const Matrix v = random_matrix(2, 8, rng);
  const Matrix a = u * v;
  const auto s = rem::dsp::svd(a);
  ASSERT_GE(s.sigma.size(), 2u);
  EXPECT_GT(s.sigma[1], 1e-8);
  for (std::size_t i = 2; i < s.sigma.size(); ++i)
    EXPECT_LT(s.sigma[i], s.sigma[0] * 1e-8);
  EXPECT_LT(Matrix::max_abs_diff(s.reconstruct(), a), 1e-8);
}

TEST(Svd, RankLimitTruncates) {
  rem::common::Rng rng(6);
  const Matrix a = random_matrix(6, 6, rng);
  const auto s = rem::dsp::svd(a, 3);
  EXPECT_EQ(s.sigma.size(), 3u);
  EXPECT_EQ(s.u.cols(), 3u);
  EXPECT_EQ(s.v.cols(), 3u);
}

TEST(Svd, SingularValuesMatchKnownMatrix) {
  // diag(3, 4) embedded: singular values are {4, 3}.
  Matrix a(2, 2);
  a(0, 0) = cd(3, 0);
  a(1, 1) = cd(4, 0);
  const auto s = rem::dsp::svd(a);
  ASSERT_EQ(s.sigma.size(), 2u);
  EXPECT_NEAR(s.sigma[0], 4.0, 1e-10);
  EXPECT_NEAR(s.sigma[1], 3.0, 1e-10);
}

TEST(Svd, FrobeniusEqualsSigmaNorm) {
  rem::common::Rng rng(7);
  const Matrix a = random_matrix(9, 5, rng);
  const auto s = rem::dsp::svd(a);
  double sum2 = 0;
  for (double v : s.sigma) sum2 += v * v;
  EXPECT_NEAR(std::sqrt(sum2), a.frobenius_norm(), 1e-8);
}
