// Randomized-schedule chaos soak: every registered FaultKind fires from a
// seeded random schedule (kinds overlapping freely) over multi-seed runs
// with the invariant checker attached. The point is not a specific
// behavioural assertion — it is to drive the simulator's fault machinery
// through schedule interleavings no scripted test enumerates, under
// sanitizers (scripts/check_soak.sh runs this binary in the ASan/UBSan
// and TSan build trees), with the checker turning any protocol-state or
// accounting violation into a test failure.
#include "fleet_runner.hpp"
#include "scenario_runner.hpp"
#include "sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace rs = rem::sim;

namespace {

/// One random spec per registered FaultKind, magnitudes inside each
/// kind's legal range. Gaps are short so a 50 s run sees several windows
/// of most kinds; different kinds may overlap (only same-kind overlap is
/// illegal, and generated schedules never self-overlap).
rs::FaultConfig random_everything() {
  rs::FaultConfig cfg;
  cfg.random = {
      {rs::FaultKind::kSignalingLoss, 25.0, 1.0, 4.0, 0.5, 1.0},
      {rs::FaultKind::kPilotOutage, 25.0, 2.0, 6.0, 1.0, 4.0},
      {rs::FaultKind::kProcessingStall, 25.0, 2.0, 8.0, 0.2, 0.6},
      {rs::FaultKind::kCoverageBlackout, 30.0, 1.0, 3.0, 40.0, 60.0},
      {rs::FaultKind::kCommandDuplication, 25.0, 5.0, 15.0, 1.0, 1.0},
      {rs::FaultKind::kBackhaulLoss, 25.0, 5.0, 15.0, 0.02, 0.10},
      {rs::FaultKind::kBackhaulDelay, 25.0, 3.0, 8.0, 0.01, 0.03},
      {rs::FaultKind::kBackhaulPartition, 30.0, 1.0, 3.0, 1.0, 1.0},
      {rs::FaultKind::kBsOverload, 25.0, 2.0, 8.0, 0.5, 1.0},
      {rs::FaultKind::kBsCrashRestart, 30.0, 1.0, 4.0, 1.0, 1.0},
      // Correlated-regional kinds: the random crash spec above doubles as
      // the cascade's crash trigger, and staggered domain blackouts
      // interleave with every other class.
      {rs::FaultKind::kRegionOutage, 35.0, 1.0, 3.0, 1.0, 1.0},
      {rs::FaultKind::kCascadeOverload, 30.0, 3.0, 8.0, 0.5, 0.9},
  };
  return cfg;
}

/// Arm the cascade-resilience stack (load ads, breakers, storm jitter) on
/// a fleet soak so those code paths run under the sanitizers too.
void arm_resilience(rem::bench::FleetRunOptions& opts) {
  opts.load_ad_staleness_s = 1.0;
  opts.breaker_trip_k = 2;
  opts.breaker_cooldown_s = 1.5;
  opts.storm_jitter_frac = 0.5;
}

}  // namespace

TEST(ChaosSoak, RandomizedAllFaultScheduleHoldsInvariants) {
  // The schedule itself is derived from each seed's Rng, so every seed
  // soaks a different interleaving; run_seed throws (failing the test)
  // on any invariant violation, and the sanitizer builds catch memory
  // and data-race bugs the checker cannot see.
  rem::phy::LogisticBlerModel bler;
  rem::bench::SeedRunOptions opts;
  opts.faults = random_everything();
  for (const std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const auto r =
        rem::bench::run_seed(rem::trace::Route::kBeijingShanghai, 300.0,
                             50.0, seed, true, bler, opts);
    // Minimal liveness: the runs simulated the full horizon and the BS
    // capacity model actually saw traffic under the fault mix.
    EXPECT_EQ(r.legacy.sim_time_s, 50.0);
    EXPECT_EQ(r.rem.sim_time_s, 50.0);
    EXPECT_GT(r.legacy.bs_jobs_submitted + r.rem.bs_jobs_submitted, 0);
  }
}

TEST(ChaosSoak, RandomizedScheduleReplaysBitIdentically) {
  // Same seed, same spec: the randomized soak is still deterministic, so
  // a sanitizer hit here is reproducible by rerunning the same test.
  rem::phy::LogisticBlerModel bler;
  rem::bench::SeedRunOptions opts;
  opts.faults = random_everything();
  const auto a = rem::bench::run_seed(rem::trace::Route::kBeijingTaiyuan,
                                      250.0, 45.0, 5, true, bler, opts);
  const auto b = rem::bench::run_seed(rem::trace::Route::kBeijingTaiyuan,
                                      250.0, 45.0, 5, true, bler, opts);
  EXPECT_EQ(a.legacy.handovers, b.legacy.handovers);
  EXPECT_EQ(a.legacy.failures, b.legacy.failures);
  EXPECT_EQ(a.legacy.bs_queue_shed, b.legacy.bs_queue_shed);
  EXPECT_EQ(a.legacy.bs_queue_wait_sum_s, b.legacy.bs_queue_wait_sum_s);
  EXPECT_EQ(a.rem.admission_rejects, b.rem.admission_rejects);
  EXPECT_EQ(a.rem.bs_crashes, b.rem.bs_crashes);
  EXPECT_EQ(a.rem.stale_context_responses, b.rem.stale_context_responses);
  EXPECT_EQ(a.rem.backhaul_sent, b.rem.backhaul_sent);
}

TEST(ChaosSoak, RandomizedAllFaultFleetHoldsInvariants) {
  // The fleet engine under the same everything-at-once chaos: N UEs
  // contending for BS slots and backhaul capacity while every fault kind
  // fires from seeded random schedules. One InvariantChecker per UE plus
  // the fleet-level report (run_fleet_seed throws on either), under the
  // sanitizer builds via scripts/check_soak.sh.
  rem::phy::LogisticBlerModel bler;
  rem::bench::FleetRunOptions opts;
  opts.fleet_size = 8;
  opts.faults = random_everything();
  arm_resilience(opts);
  for (const std::uint64_t seed : {44ULL, 55ULL}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    for (bool use_rem : {false, true}) {
      SCOPED_TRACE(use_rem ? "rem" : "legacy");
      opts.use_rem = use_rem;
      const auto r =
          rem::bench::run_fleet_seed(rem::trace::Route::kBeijingShanghai,
                                     300.0, 40.0, seed, bler, opts);
      ASSERT_EQ(r.per_ue.size(), 8u);
      for (const auto& s : r.per_ue) EXPECT_EQ(s.sim_time_s, 40.0);
      EXPECT_GT(r.aggregate.bs_jobs_submitted, 0);
    }
  }
}

TEST(ChaosSoak, RandomizedFleetReplaysBitIdentically) {
  rem::phy::LogisticBlerModel bler;
  rem::bench::FleetRunOptions opts;
  opts.fleet_size = 6;
  opts.faults = random_everything();
  arm_resilience(opts);
  const auto a = rem::bench::run_fleet_seed(
      rem::trace::Route::kBeijingTaiyuan, 250.0, 30.0, 7, bler, opts);
  const auto b = rem::bench::run_fleet_seed(
      rem::trace::Route::kBeijingTaiyuan, 250.0, 30.0, 7, bler, opts);
  ASSERT_EQ(a.per_ue.size(), b.per_ue.size());
  for (std::size_t k = 0; k < a.per_ue.size(); ++k) {
    SCOPED_TRACE("ue " + std::to_string(k));
    EXPECT_EQ(a.per_ue[k].handovers, b.per_ue[k].handovers);
    EXPECT_EQ(a.per_ue[k].failures, b.per_ue[k].failures);
    EXPECT_EQ(a.per_ue[k].mean_throughput_bps,
              b.per_ue[k].mean_throughput_bps);
  }
  EXPECT_EQ(a.aggregate.bs_queue_shed, b.aggregate.bs_queue_shed);
  EXPECT_EQ(a.aggregate.admission_rejects, b.aggregate.admission_rejects);
  EXPECT_EQ(a.aggregate.bs_crashes, b.aggregate.bs_crashes);
  EXPECT_EQ(a.aggregate.backhaul_sent, b.aggregate.backhaul_sent);
  EXPECT_EQ(a.aggregate.cascade_jobs_injected,
            b.aggregate.cascade_jobs_injected);
  EXPECT_EQ(a.aggregate.breaker_trips, b.aggregate.breaker_trips);
  EXPECT_EQ(a.aggregate.load_ads_received, b.aggregate.load_ads_received);
  EXPECT_EQ(a.aggregate.storm_jitter_applied,
            b.aggregate.storm_jitter_applied);
}
