// Deterministic pinning of the Table 2 failure taxonomy: tiny
// zero-randomness deployments (all shadowing/fading sigmas zeroed, so
// RSRP is pure path loss) plus a scripted manager steer the simulator
// into each FailureCause exactly once.
//
// Geometry used throughout: tx 46 dBm, ref loss 34 dB, exponent 3.5,
// carrier 2 GHz (no frequency term), noise floor -101 dBm, so
//   rsrp(d) = 12 - 35 log10(d),  snr = rsrp + 101.
// SNR crosses Qout (-7 dB -> rsrp -108 dBm) at d ~ 2683 m; at 300 km/h
// (83.3 m/s) that is t ~ 32.2 s, with the T310-armed RLF landing ~0.5 s
// later.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <set>

namespace rs = rem::sim;

namespace {

rs::PropagationConfig deterministic_propagation() {
  rs::PropagationConfig pc;
  pc.shadowing_sigma_db = 0.0;
  pc.per_cell_shadow_sigma_db = 0.0;
  pc.fading_sigma_db = 0.0;
  pc.dd_residual_sigma_db = 0.0;
  return pc;
}

rs::Cell make_cell(int idx, double site_pos_m) {
  rs::Cell c;
  c.id = {idx, idx, 1825};
  c.site_pos_m = site_pos_m;
  c.site_offset_m = 50.0;
  c.carrier_hz = 2.0e9;
  return c;
}

/// Fires one scripted handover decision at `fire_at_s` (never, if
/// negative); reports a fixed visible-cell set for classification.
class ScriptedManager final : public rs::MobilityManager {
 public:
  ScriptedManager(std::set<std::size_t> visible, double fire_at_s = -1.0,
                  std::size_t target = 0)
      : visible_(std::move(visible)), fire_at_s_(fire_at_s),
        target_(target) {}

  std::string name() const override { return "scripted"; }
  rem::phy::Waveform waveform() const override {
    return rem::phy::Waveform::kOTFS;
  }
  std::optional<rs::HandoverDecision> update(
      double t, const rs::ServingState&,
      const std::vector<rs::Observation>&) override {
    if (fire_at_s_ >= 0.0 && !fired_ && t >= fire_at_s_) {
      fired_ = true;
      return rs::HandoverDecision{target_, 0.0};
    }
    return std::nullopt;
  }
  std::set<std::size_t> visible_cells() const override { return visible_; }
  void on_serving_changed(double, std::size_t idx) override {
    serving_ = idx;
  }
  std::size_t serving() const { return serving_; }

 private:
  std::set<std::size_t> visible_;
  double fire_at_s_;
  std::size_t target_;
  bool fired_ = false;
  std::size_t serving_ = 0;
};

int cause_count(const rs::SimStats& s, rs::FailureCause c) {
  const auto it = s.failures_by_cause.find(c);
  return it != s.failures_by_cause.end() ? it->second : 0;
}

rs::SimConfig base_config(double duration_s) {
  rs::SimConfig sc;
  sc.speed_kmh = 300.0;
  sc.duration_s = duration_s;
  // These pins rely on millisecond-exact command timing against scripted
  // fault windows; run the direct signaling path so the jittered backhaul
  // prep handshake cannot shift delivery times. The transport-enabled
  // equivalents live in test_backhaul.cpp's BackhaulFsm suite.
  sc.backhaul.enabled = false;
  return sc;
}

}  // namespace

TEST(FailureCauses, CoverageHoleWhenNoAlternativeExists) {
  // Single cell: when it fades below Qout the best cell IS the serving
  // cell, which classifies as a (soft) coverage hole.
  rem::common::Rng rng(1);
  rs::RadioEnv env({make_cell(0, 0.0)}, deterministic_propagation(),
                   rng.fork());
  ScriptedManager mgr({0});
  rem::phy::LogisticBlerModel bler;
  rs::Simulator sim(env, base_config(35.0), bler, rng.fork());
  const auto stats = sim.run(mgr);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(cause_count(stats, rs::FailureCause::kCoverageHole), 1);
  EXPECT_EQ(stats.handovers, 0);
  // Nothing to re-establish on: the run ends still in outage.
  EXPECT_GT(stats.downtime_fraction, 0.0);
}

TEST(FailureCauses, MissedCellWhenBestCandidateIsInvisible) {
  // A healthy neighbor exists at RLF time, but the manager cannot see it
  // (multi-band measurement gap), so no decision was ever possible.
  rem::common::Rng rng(1);
  rs::RadioEnv env({make_cell(0, 0.0), make_cell(1, 4000.0)},
                   deterministic_propagation(), rng.fork());
  ScriptedManager mgr({0});  // cell 1 invisible
  rem::phy::LogisticBlerModel bler;
  rs::Simulator sim(env, base_config(35.0), bler, rng.fork());
  const auto stats = sim.run(mgr);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(cause_count(stats, rs::FailureCause::kMissedCell), 1);
}

TEST(FailureCauses, FeedbackLossWhenReportRetransmissionsExhaust) {
  // The manager decides early, but a burst-loss fault swallows the report
  // and all its backoff retransmissions; the RLF then classifies as
  // feedback delay/loss.
  rem::common::Rng rng(1);
  rs::RadioEnv env({make_cell(0, 0.0), make_cell(1, 4000.0)},
                   deterministic_propagation(), rng.fork());
  ScriptedManager mgr({0, 1}, 10.0, 1);
  auto cfg = base_config(35.0);
  cfg.faults.windows = {{rs::FaultKind::kSignalingLoss, 10.005, 4.0, 1.0}};
  rem::phy::LogisticBlerModel bler;
  rs::Simulator sim(env, cfg, bler, rng.fork());
  const auto stats = sim.run(mgr);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(cause_count(stats, rs::FailureCause::kFeedbackDelayLoss), 1);
  EXPECT_EQ(stats.report_retransmits, 3);  // bounded backoff, then give up
  EXPECT_EQ(stats.handovers, 0);
}

TEST(FailureCauses, CommandLossWhenDownlinkDeliveryFails) {
  // The report gets through before the burst-loss window opens; the
  // handover command falls inside it and is lost.
  rem::common::Rng rng(1);
  rs::RadioEnv env({make_cell(0, 0.0), make_cell(1, 4000.0)},
                   deterministic_propagation(), rng.fork());
  ScriptedManager mgr({0, 1}, 10.0, 1);
  auto cfg = base_config(35.0);
  cfg.faults.windows = {{rs::FaultKind::kSignalingLoss, 10.06, 4.0, 1.0}};
  rem::phy::LogisticBlerModel bler;
  rs::Simulator sim(env, cfg, bler, rng.fork());
  const auto stats = sim.run(mgr);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(cause_count(stats, rs::FailureCause::kHoCommandLoss), 1);
  EXPECT_EQ(stats.handovers, 0);  // command never reached the UE
}

TEST(FailureCauses, T304ExpiryFallsBackToPreparedTarget) {
  // The command is delivered, but a blackout window covers the execution
  // interruption, so the target cannot be connected (T304 expiry). Once
  // the blackout lifts, re-establishment on the prepared target succeeds
  // within the fast t304_reestablish_s budget.
  rem::common::Rng rng(1);
  rs::RadioEnv env({make_cell(0, 0.0), make_cell(1, 2000.0)},
                   deterministic_propagation(), rng.fork());
  ScriptedManager mgr({0, 1}, 12.0, 1);
  auto cfg = base_config(20.0);
  cfg.faults.windows = {{rs::FaultKind::kCoverageBlackout, 12.10, 0.35,
                         40.0}};
  rem::phy::LogisticBlerModel bler;
  rs::Simulator sim(env, cfg, bler, rng.fork());
  const auto stats = sim.run(mgr);
  EXPECT_EQ(stats.handovers, 1);
  EXPECT_EQ(stats.successful_handovers, 0);
  EXPECT_EQ(stats.t304_expiries, 1);
  EXPECT_EQ(stats.t304_fallback_success, 1);
  EXPECT_EQ(stats.failures, 1);
  EXPECT_EQ(cause_count(stats, rs::FailureCause::kFeedbackDelayLoss), 1);
  EXPECT_EQ(mgr.serving(), 1u);  // camped on the prepared target
  ASSERT_EQ(stats.outage_durations_s.size(), 1u);
  // Fast fallback: well under the full RLF search budget.
  EXPECT_LT(stats.outage_durations_s[0], cfg.reestablish_s);
}
