#include "channel/multipath.hpp"
#include "channel/noise.hpp"
#include "channel/profiles.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace rch = rem::channel;
using rem::dsp::CVec;
using rem::dsp::cd;

TEST(Multipath, SinglePathTfResponse) {
  // One path, no Doppler, delay tau: H(t, f) = h e^{-j 2 pi f tau}.
  rch::Path p;
  p.gain = cd(0.8, 0.3);
  p.delay_s = 1e-6;
  rch::MultipathChannel ch({p});
  const cd h = ch.tf_response(0.0, 1e6);
  const double ang = -2.0 * M_PI * 1e6 * 1e-6;
  const cd expect = p.gain * cd(std::cos(ang), std::sin(ang));
  EXPECT_NEAR(std::abs(h - expect), 0.0, 1e-12);
}

TEST(Multipath, DopplerRotatesOverTime) {
  rch::Path p;
  p.gain = cd(1, 0);
  p.doppler_hz = 100.0;
  rch::MultipathChannel ch({p});
  const cd h0 = ch.tf_response(0.0, 0.0);
  const cd h1 = ch.tf_response(0.0025, 0.0);  // quarter of the 10 ms period
  EXPECT_NEAR(std::abs(h0 - cd(1, 0)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(h1 - cd(0, 1)), 0.0, 1e-9);
}

TEST(Multipath, NormalizePower) {
  rem::common::Rng rng(1);
  rch::ChannelDrawConfig cfg;
  cfg.profile = rch::Profile::kEVA;
  cfg.normalize = false;
  auto ch = rch::draw_channel(cfg, rng);
  ch.normalize_power();
  EXPECT_NEAR(ch.total_power(), 1.0, 1e-12);
}

TEST(Multipath, ApplySignalPreservesPowerForUnitChannel) {
  // Unit-gain single path, no delay/Doppler: output == input.
  rch::Path p;
  p.gain = cd(1, 0);
  rch::MultipathChannel ch({p});
  rem::common::Rng rng(2);
  CVec tx(256);
  for (auto& x : tx) x = rng.complex_gaussian(1.0);
  const CVec rx = ch.apply_to_signal(tx, 1e6);
  for (std::size_t i = 0; i < tx.size(); ++i)
    EXPECT_LT(std::abs(rx[i] - tx[i]), 1e-9);
}

TEST(Multipath, IntegerDelayIsCircularShift) {
  rch::Path p;
  p.gain = cd(1, 0);
  const double fs = 1e6;
  p.delay_s = 3.0 / fs;  // exactly 3 samples
  rch::MultipathChannel ch({p});
  CVec tx(64, cd(0, 0));
  tx[0] = cd(1, 0);
  const CVec rx = ch.apply_to_signal(tx, fs);
  EXPECT_NEAR(std::abs(rx[3] - cd(1, 0)), 0.0, 1e-9);
  for (std::size_t i = 0; i < rx.size(); ++i) {
    if (i != 3) EXPECT_NEAR(std::abs(rx[i]), 0.0, 1e-9);
  }
}

TEST(Multipath, DopplerShiftMovesTone) {
  // A pure Doppler path turns DC into a complex exponential at nu.
  rch::Path p;
  p.gain = cd(1, 0);
  p.doppler_hz = 1000.0;
  rch::MultipathChannel ch({p});
  const double fs = 64000.0;
  CVec tx(64, cd(1, 0));
  const CVec rx = ch.apply_to_signal(tx, fs);
  // Sample 16 is a quarter of the Doppler period (1 ms) at fs.
  const double ang = 2.0 * M_PI * 1000.0 * 16.0 / fs;
  EXPECT_LT(std::abs(rx[16] - cd(std::cos(ang), std::sin(ang))), 1e-9);
}

TEST(Multipath, DdMatrixPeaksAtPathLocation) {
  // Path on exact grid point (k0 * dtau, l0 * dnu) should concentrate
  // essentially all DD energy in bin (k0, l0).
  const std::size_t m = 16, n = 16;
  const double df = 15e3;
  const double symbol_t = 1.0 / df;  // no CP here
  const double dtau = 1.0 / (m * df);
  const double dnu = 1.0 / (n * symbol_t);
  rch::Path p;
  p.gain = cd(1, 0);
  p.delay_s = 3 * dtau;
  p.doppler_hz = 2 * dnu;
  rch::MultipathChannel ch({p});
  const auto h = ch.dd_matrix(m, n, df, symbol_t);
  double peak = std::abs(h(3, 2));
  for (std::size_t k = 0; k < m; ++k)
    for (std::size_t l = 0; l < n; ++l)
      if (!(k == 3 && l == 2))
        EXPECT_LT(std::abs(h(k, l)), peak * 1e-6)
            << "leakage at (" << k << "," << l << ")";
  // Eq. 5 normalization: on-grid path of unit gain gives |h| = 1.
  EXPECT_NEAR(peak, 1.0, 1e-9);
}

TEST(Multipath, DopplerScaling) {
  rem::common::Rng rng(3);
  rch::ChannelDrawConfig cfg;
  cfg.profile = rch::Profile::kHST350;
  cfg.speed_mps = rem::common::kmh_to_mps(350);
  cfg.carrier_hz = 2.0e9;
  const auto ch = rch::draw_channel(cfg, rng);
  const auto scaled = ch.with_doppler_scaled(0.5);
  ASSERT_EQ(ch.num_paths(), scaled.num_paths());
  for (std::size_t i = 0; i < ch.num_paths(); ++i) {
    EXPECT_DOUBLE_EQ(scaled.paths()[i].doppler_hz,
                     ch.paths()[i].doppler_hz * 0.5);
    EXPECT_EQ(scaled.paths()[i].gain, ch.paths()[i].gain);
    EXPECT_DOUBLE_EQ(scaled.paths()[i].delay_s, ch.paths()[i].delay_s);
  }
}

TEST(Multipath, AdvancedByRotatesGains) {
  rch::Path p;
  p.gain = cd(1, 0);
  p.doppler_hz = 250.0;
  rch::MultipathChannel ch({p});
  const auto adv = ch.advanced_by(1e-3);  // quarter period
  EXPECT_LT(std::abs(adv.paths()[0].gain - cd(0, 1)), 1e-9);
}

class ProfileTest : public ::testing::TestWithParam<rch::Profile> {};

TEST_P(ProfileTest, DrawIsNormalizedAndHasBoundedDoppler) {
  rem::common::Rng rng(17);
  rch::ChannelDrawConfig cfg;
  cfg.profile = GetParam();
  cfg.speed_mps = rem::common::kmh_to_mps(300);
  cfg.carrier_hz = 2.1e9;
  const double nu_max =
      rem::common::max_doppler_hz(cfg.speed_mps, cfg.carrier_hz);
  for (int i = 0; i < 50; ++i) {
    const auto ch = rch::draw_channel(cfg, rng);
    EXPECT_NEAR(ch.total_power(), 1.0, 1e-9);
    EXPECT_GE(ch.num_paths(), tap_specs(GetParam()).size());
    for (const auto& p : ch.paths()) {
      EXPECT_LE(std::abs(p.doppler_hz), nu_max * (1.0 + 1e-9));
      EXPECT_GE(p.delay_s, 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfileTest,
                         ::testing::Values(rch::Profile::kEPA,
                                           rch::Profile::kEVA,
                                           rch::Profile::kETU,
                                           rch::Profile::kHST350));

TEST(Profiles, HstIsLosDominant) {
  rem::common::Rng rng(23);
  rch::ChannelDrawConfig cfg;
  cfg.profile = rch::Profile::kHST350;
  cfg.speed_mps = rem::common::kmh_to_mps(350);
  cfg.carrier_hz = 2.0e9;
  cfg.rician_k_db = 10.0;
  const double nu_max =
      rem::common::max_doppler_hz(cfg.speed_mps, cfg.carrier_hz);
  int strong_los = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const auto ch = rch::draw_channel(cfg, rng);
    // The strongest path should be the LOS with |doppler| >= 0.9 nu_max.
    double best = -1;
    double best_doppler = 0;
    for (const auto& p : ch.paths()) {
      if (std::norm(p.gain) > best) {
        best = std::norm(p.gain);
        best_doppler = p.doppler_hz;
      }
    }
    if (std::abs(best_doppler) >= 0.9 * nu_max * 0.999) ++strong_los;
  }
  EXPECT_GT(strong_los, trials * 3 / 4);
}

TEST(Noise, AwgnPowerMatchesRequest) {
  rem::common::Rng rng(31);
  CVec zeros(20000, cd(0, 0));
  rch::add_awgn(zeros, 0.25, rng);
  EXPECT_NEAR(rch::mean_power(zeros), 0.25, 0.01);
}

TEST(Noise, SnrHelper) {
  EXPECT_NEAR(rch::noise_power_for_snr_db(0.0), 1.0, 1e-12);
  EXPECT_NEAR(rch::noise_power_for_snr_db(10.0), 0.1, 1e-12);
}
