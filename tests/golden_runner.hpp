// Shared by test_golden_traces (replay-and-diff) and golden_gen
// (regeneration): exactly how a GoldenCase is executed and digested. Both
// sides must agree byte-for-byte, so the logic lives in one place.
#pragma once

#include "scenario_runner.hpp"
#include "testkit/golden.hpp"

namespace rem::testkit {

/// Run one corpus case (legacy + REM, events recorded, invariant checker
/// attached) and produce its digest.
inline TraceDigest run_golden_case(const GoldenCase& c) {
  phy::LogisticBlerModel bler;
  bench::SeedRunOptions opts;
  opts.faults = golden_fault_preset(c.fault_preset, c.duration_s);
  opts.record_events = true;
  const auto r = bench::run_seed(c.route, c.speed_kmh, c.duration_s, c.seed,
                                 /*run_rem=*/true, bler, opts);
  return make_digest(c, r.legacy, r.rem);
}

}  // namespace rem::testkit
