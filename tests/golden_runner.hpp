// Shared by test_golden_traces (replay-and-diff) and golden_gen
// (regeneration): exactly how a GoldenCase is executed and digested. Both
// sides must agree byte-for-byte, so the logic lives in one place.
#pragma once

#include "scenario_runner.hpp"
#include "testkit/golden.hpp"

namespace rem::testkit {

/// Run one corpus case (legacy + REM, events recorded, invariant checker
/// attached) and produce its digest.
inline TraceDigest run_golden_case(const GoldenCase& c) {
  phy::LogisticBlerModel bler;
  bench::SeedRunOptions opts;
  opts.faults = golden_fault_preset(c.fault_preset, c.duration_s);
  opts.record_events = true;
  if (c.fault_preset == "backhaul_loss_reorder") {
    // Pair the scripted loss windows with a transport that also reorders
    // and duplicates, so every frame path shows up in the digest.
    net::BackhaulConfig bh;
    bh.loss_prob = 0.02;
    bh.reorder_prob = 0.15;
    bh.duplicate_prob = 0.10;
    opts.backhaul = bh;
  }
  const auto r = bench::run_seed(c.route, c.speed_kmh, c.duration_s, c.seed,
                                 /*run_rem=*/true, bler, opts);
  return make_digest(c, r.legacy, r.rem);
}

}  // namespace rem::testkit
