// Shared by test_golden_traces (replay-and-diff) and golden_gen
// (regeneration): exactly how a GoldenCase is executed and digested. Both
// sides must agree byte-for-byte, so the logic lives in one place.
#pragma once

#include "fleet_runner.hpp"
#include "scenario/scenario.hpp"
#include "scenario_runner.hpp"
#include "testkit/golden.hpp"

#include <functional>

namespace rem::testkit {

/// Run one corpus case (legacy + REM, events recorded, invariant checker
/// attached) and produce its digest.
inline TraceDigest run_golden_case(const GoldenCase& c) {
  phy::LogisticBlerModel bler;
  bench::SeedRunOptions opts;
  opts.faults = golden_fault_preset(c.fault_preset, c.duration_s);
  opts.record_events = true;
  if (c.fault_preset == "backhaul_loss_reorder") {
    // Pair the scripted loss windows with a transport that also reorders
    // and duplicates, so every frame path shows up in the digest.
    net::BackhaulConfig bh;
    bh.loss_prob = 0.02;
    bh.reorder_prob = 0.15;
    bh.duplicate_prob = 0.10;
    opts.backhaul = bh;
  }
  const auto r = bench::run_seed(c.route, c.speed_kmh, c.duration_s, c.seed,
                                 /*run_rem=*/true, bler, opts);
  return make_digest(c, r.legacy, r.rem);
}

/// Run one fleet corpus case (a legacy fleet and a REM fleet, events
/// recorded, one invariant checker per UE) and produce its digest.
inline TraceDigest run_fleet_golden_case(const FleetGoldenCase& c) {
  phy::LogisticBlerModel bler;
  bench::FleetRunOptions opts;
  opts.fleet_size = c.fleet_size;
  opts.faults = golden_fault_preset(c.fault_preset, c.duration_s);
  opts.record_events = true;
  if (c.fault_preset == "region_outage" || c.fault_preset == "cascade_storm") {
    // Correlated-fault cases run with the full resilience stack armed so
    // load ads, breaker transitions, and storm jitter all land in the pin.
    opts.load_ad_staleness_s = 1.0;
    opts.breaker_trip_k = 2;
    opts.breaker_cooldown_s = 1.5;
    opts.storm_jitter_frac = 0.5;
  }
  if (c.fault_preset == "cascade_storm") {
    // Single-slot stations with short queues: the cascade's background
    // load forces admission busy-rejects, so the breaker trip/probe/close
    // cycle is reliably exercised and pinned.
    sim::BsCapacityConfig cap;
    cap.slots = 1;
    cap.queue_capacity = 4;
    cap.admission_load_threshold = 0.5;
    opts.bs_capacity = cap;
  }
  opts.use_rem = false;
  const auto legacy = bench::run_fleet_seed(c.route, c.speed_kmh,
                                            c.duration_s, c.seed, bler, opts);
  opts.use_rem = true;
  const auto rem = bench::run_fleet_seed(c.route, c.speed_kmh, c.duration_s,
                                         c.seed, bler, opts);
  return make_fleet_digest(c, legacy, rem);
}

/// One replayable unit of the committed corpus. The generator and the
/// replay test both iterate golden_jobs(), so a case added to either
/// corpus is automatically generated and regression-checked.
struct GoldenJob {
  std::string name;
  std::function<TraceDigest()> run;
};

/// Compile one library scenario and digest its *configuration* (no
/// simulation): scenario compilation is a pure function of the JSON, so
/// these digests pin the whole compiler — layout shaping, time
/// compression, fault scaling, profile resolution — byte-for-byte.
inline TraceDigest run_scenario_golden_case(const std::string& dir,
                                            const std::string& name) {
  const auto spec = rem::scenario::load_scenario(dir, name);
  const auto compiled = rem::scenario::compile(spec);
  TraceDigest d;
  d.case_name = "scen_" + name;
  d.fields = rem::scenario::digest_fields(compiled);
  return d;
}

inline std::vector<GoldenJob> golden_jobs() {
  std::vector<GoldenJob> jobs;
  for (const auto& c : golden_corpus())
    jobs.push_back({c.name, [c] { return run_golden_case(c); }});
  for (const auto& c : fleet_golden_corpus())
    jobs.push_back({c.name, [c] { return run_fleet_golden_case(c); }});
#ifdef REM_SCENARIO_DIR
  for (const auto& name : rem::scenario::list_scenario_names(REM_SCENARIO_DIR))
    jobs.push_back({"scen_" + name, [name] {
                      return run_scenario_golden_case(REM_SCENARIO_DIR, name);
                    }});
#endif
  return jobs;
}

}  // namespace rem::testkit
