#include "core/legacy_manager.hpp"
#include "core/overlay.hpp"
#include "core/rem_manager.hpp"

#include <gtest/gtest.h>

namespace rc = rem::core;
namespace rs = rem::sim;
namespace rm = rem::mobility;

namespace {

rs::ServingState serving_at(double rsrp) {
  rs::ServingState s;
  s.cell_idx = 0;
  s.id = {0, 0, 10};
  s.rsrp_dbm = rsrp;
  s.dd_snr_db = rsrp + 101.0;
  s.snr_db = rsrp + 101.0;
  return s;
}

rs::Observation neighbor(std::size_t idx, int cell, int site, int channel,
                         double rsrp) {
  rs::Observation o;
  o.cell_idx = idx;
  o.id = {cell, site, channel};
  o.rsrp_dbm = rsrp;
  o.dd_snr_db = rsrp + 101.0;
  return o;
}

rm::CellPolicy simple_a3_policy(double offset, double ttt) {
  rm::CellPolicy p;
  rm::PolicyRule r;
  r.channel = rm::PolicyRule::kServingChannel;
  r.event = {rm::EventType::kA3, 0, 0, offset, 0, ttt};
  p.rules.push_back(r);
  return p;
}

}  // namespace

TEST(LegacyManager, TriggersA3AfterTtt) {
  rc::LegacyConfig cfg;
  cfg.default_policy = simple_a3_policy(3.0, 0.04);
  rc::LegacyManager mgr(cfg);
  mgr.on_serving_changed(0.0, 0);

  const auto sv = serving_at(-100.0);
  const std::vector<rs::Observation> obs = {neighbor(1, 1, 1, 10, -90.0)};
  EXPECT_FALSE(mgr.update(0.00, sv, obs).has_value());  // TTT running
  EXPECT_FALSE(mgr.update(0.02, sv, obs).has_value());
  const auto d = mgr.update(0.05, sv, obs);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->target_idx, 1u);
  EXPECT_GT(d->feedback_delay_s, 0.0);
}

TEST(LegacyManager, IgnoresInterFrequencyInStageZero) {
  rc::LegacyConfig cfg;
  cfg.default_policy = simple_a3_policy(3.0, 0.0);
  rc::LegacyManager mgr(cfg);
  mgr.on_serving_changed(0.0, 0);
  const auto sv = serving_at(-100.0);
  // Strong neighbor on another channel: invisible to the intra-only rule.
  const std::vector<rs::Observation> obs = {neighbor(1, 1, 1, 20, -80.0)};
  EXPECT_FALSE(mgr.update(0.0, sv, obs).has_value());
  EXPECT_TRUE(mgr.visible_cells().empty());
}

TEST(LegacyManager, MultiStageReconfiguresAfterA2WithDelay) {
  rc::LegacyConfig cfg;
  rm::CellPolicy p;
  rm::PolicyRule guard;
  guard.event = {rm::EventType::kA2, -105, 0, 0, 0, 0};
  guard.action = rm::PolicyAction::kReconfigure;
  guard.next_stage = 1;
  p.rules.push_back(guard);
  rm::PolicyRule inter;
  inter.stage = 1;
  inter.channel = 20;
  inter.event = {rm::EventType::kA4, -108, 0, 0, 0, 0};
  p.rules.push_back(inter);
  cfg.default_policy = p;
  rc::LegacyManager mgr(cfg);
  mgr.on_serving_changed(0.0, 0);

  const auto sv = serving_at(-110.0);  // A2 satisfied
  const std::vector<rs::Observation> obs = {neighbor(1, 1, 1, 20, -95.0)};
  EXPECT_FALSE(mgr.update(0.0, sv, obs).has_value());
  EXPECT_EQ(mgr.current_stage(), 0);  // reconfiguration in flight
  // After the round trip the stage switches and A4 can fire.
  std::optional<rs::HandoverDecision> d;
  for (double t = 0.01; t < 0.5 && !d; t += 0.01) d = mgr.update(t, sv, obs);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(mgr.current_stage(), 1);
  EXPECT_EQ(mgr.reconfigurations(), 1);
  EXPECT_EQ(d->target_idx, 1u);
}

TEST(LegacyManager, RefireIntervalSuppressesDuplicates) {
  rc::LegacyConfig cfg;
  cfg.default_policy = simple_a3_policy(3.0, 0.0);
  cfg.refire_interval_s = 0.24;
  rc::LegacyManager mgr(cfg);
  mgr.on_serving_changed(0.0, 0);
  const auto sv = serving_at(-100.0);
  const std::vector<rs::Observation> obs = {neighbor(1, 1, 1, 10, -90.0)};
  ASSERT_TRUE(mgr.update(0.0, sv, obs).has_value());
  EXPECT_FALSE(mgr.update(0.05, sv, obs).has_value());
  EXPECT_TRUE(mgr.update(0.30, sv, obs).has_value());  // re-fire allowed
}

TEST(RemManager, SeesAllChannelsImmediately) {
  rc::RemManager mgr(rc::RemConfig{}, rem::common::Rng(1));
  mgr.on_serving_changed(0.0, 0);
  const auto sv = serving_at(-100.0);
  const std::vector<rs::Observation> obs = {
      neighbor(1, 1, 1, 20, -90.0),   // inter-frequency
      neighbor(2, 2, 1, 10, -95.0)};  // co-sited intra
  std::optional<rs::HandoverDecision> d;
  for (double t = 0.0; t < 0.2 && !d; t += 0.01) d = mgr.update(t, sv, obs);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->target_idx, 1u);  // best candidate, despite the channel
  EXPECT_EQ(mgr.visible_cells().size(), 2u);
}

TEST(RemManager, RespectsA3OffsetAndTtt) {
  rc::RemConfig rcfg;
  rcfg.a3_offset_db = 3.0;
  rcfg.hysteresis_db = 1.0;
  rcfg.time_to_trigger_s = 0.04;
  rc::RemManager mgr(rcfg, rem::common::Rng(2));
  mgr.on_serving_changed(0.0, 0);
  const auto sv = serving_at(-100.0);
  // Only 2 dB better: below offset+hysteresis, never triggers.
  const std::vector<rs::Observation> weak = {neighbor(1, 1, 1, 10, -98.0)};
  for (double t = 0.0; t < 0.3; t += 0.01)
    EXPECT_FALSE(mgr.update(t, sv, weak).has_value());
  // 6 dB better: triggers after TTT.
  const std::vector<rs::Observation> strong = {neighbor(1, 1, 1, 10, -94.0)};
  EXPECT_FALSE(mgr.update(0.31, sv, strong).has_value());
  std::optional<rs::HandoverDecision> d;
  for (double t = 0.32; t < 0.5 && !d; t += 0.01)
    d = mgr.update(t, sv, strong);
  EXPECT_TRUE(d.has_value());
}

TEST(RemManager, FeedbackDelayBelowLegacy) {
  rc::RemManager rem_mgr(rc::RemConfig{}, rem::common::Rng(3));
  rc::LegacyConfig lcfg;
  // Like-for-like: the legacy policy must also monitor the channel-20
  // cells (A4), paying the measurement-gap + long-TTT cost REM avoids.
  lcfg.default_policy = simple_a3_policy(3.0, 0.04);
  rm::PolicyRule inter;
  inter.channel = 20;
  inter.event = {rm::EventType::kA4, -105, 0, 0, 0, 0.640};
  lcfg.default_policy.rules.push_back(inter);
  rc::LegacyManager legacy_mgr(lcfg);
  rem_mgr.on_serving_changed(0.0, 0);
  legacy_mgr.on_serving_changed(0.0, 0);

  const auto sv = serving_at(-100.0);
  std::vector<rs::Observation> obs;
  for (int site = 1; site <= 3; ++site) {
    obs.push_back(neighbor(static_cast<std::size_t>(site * 2), site * 2,
                           site, 10, -92.0));
    obs.push_back(neighbor(static_cast<std::size_t>(site * 2 + 1),
                           site * 2 + 1, site, 20, -94.0));
  }
  std::optional<rs::HandoverDecision> dr, dl;
  for (double t = 0.0; t < 0.5 && (!dr || !dl); t += 0.01) {
    if (!dr) dr = rem_mgr.update(t, sv, obs);
    if (!dl) dl = legacy_mgr.update(t, sv, obs);
  }
  ASSERT_TRUE(dr.has_value());
  ASSERT_TRUE(dl.has_value());
  EXPECT_LT(dr->feedback_delay_s, dl->feedback_delay_s);
}

// ---------- Signaling overlay ----------

TEST(Overlay, DeliversAtGoodSnr) {
  rc::SignalingOverlay ov(rc::OverlayConfig{});
  ov.enqueue_signaling(1, 20);
  ov.enqueue_data(100, 50);
  rem::common::Rng rng(4);
  rem::channel::Path p;
  p.gain = {1, 0};
  rem::channel::MultipathChannel ch({p});
  const auto out = ov.transmit_subframe(ch, 25.0, rng);
  ASSERT_TRUE(out.allocation.signaling.has_value());
  EXPECT_EQ(out.delivered_signaling_ids, std::vector<std::uint64_t>{1});
  EXPECT_TRUE(out.lost_signaling_ids.empty());
  EXPECT_GT(out.data_res, 0u);
}

TEST(Overlay, LosesAtTerribleSnr) {
  rc::SignalingOverlay ov(rc::OverlayConfig{});
  ov.enqueue_signaling(1, 20);
  rem::common::Rng rng(5);
  rem::channel::Path p;
  p.gain = {1, 0};
  rem::channel::MultipathChannel ch({p});
  const auto out = ov.transmit_subframe(ch, -20.0, rng);
  EXPECT_EQ(out.lost_signaling_ids, std::vector<std::uint64_t>{1});
}

TEST(Overlay, NoSignalingMeansFullDataGrid) {
  rc::SignalingOverlay ov(rc::OverlayConfig{});
  ov.enqueue_data(100, 10);
  rem::common::Rng rng(6);
  rem::channel::Path p;
  p.gain = {1, 0};
  rem::channel::MultipathChannel ch({p});
  const auto out = ov.transmit_subframe(ch, 20.0, rng);
  EXPECT_FALSE(out.allocation.signaling.has_value());
  EXPECT_EQ(out.data_res, ov.config().num.total_res());
}

TEST(Overlay, BacklogCarriesAcrossSubframes) {
  rc::OverlayConfig cfg;
  cfg.num = rem::phy::Numerology::lte(12, 14);  // small grid
  rc::SignalingOverlay ov(cfg);
  for (std::uint64_t i = 0; i < 4; ++i) ov.enqueue_signaling(i, 10);
  rem::common::Rng rng(7);
  rem::channel::Path p;
  p.gain = {1, 0};
  rem::channel::MultipathChannel ch({p});
  std::size_t delivered = 0;
  for (int sub = 0; sub < 6 && delivered < 4; ++sub)
    delivered += ov.transmit_subframe(ch, 25.0, rng)
                     .delivered_signaling_ids.size();
  EXPECT_EQ(delivered, 4u);
  EXPECT_EQ(ov.signaling_backlog_bytes(), 0u);
}

TEST(Overlay, LegacyModeUsesOfdm) {
  rc::OverlayConfig cfg;
  cfg.legacy_ofdm = true;
  rc::SignalingOverlay ov(cfg);
  ov.enqueue_signaling(1, 20);
  rem::common::Rng rng(8);
  rem::channel::Path p;
  p.gain = {1, 0};
  rem::channel::MultipathChannel ch({p});
  const auto out = ov.transmit_subframe(ch, 25.0, rng);
  EXPECT_EQ(out.delivered_signaling_ids.size(), 1u);  // clean channel: fine
}
