// Property tests for sim::EventQueue, the ordering substrate under the
// multi-UE fleet engine: strict (t_s, priority, seq) dispatch, stability
// under randomized interleavings of push/pop, and the lazy
// cancel/reschedule edges.
#include "common/rng.hpp"
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <tuple>
#include <vector>

namespace rs = rem::sim;

namespace {

std::vector<rs::Event> drain(rs::EventQueue& q) {
  std::vector<rs::Event> out;
  while (auto e = q.pop()) out.push_back(*e);
  return out;
}

}  // namespace

TEST(EventQueue, PopsInTimeOrder) {
  rs::EventQueue q;
  q.push({3.0, 0, 0, 1, 0});
  q.push({1.0, 0, 0, 2, 0});
  q.push({2.0, 0, 0, 3, 0});
  const auto got = drain(q);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].kind, 2);
  EXPECT_EQ(got[1].kind, 3);
  EXPECT_EQ(got[2].kind, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SameTimestampDispatchesByPriorityThenSeq) {
  rs::EventQueue q;
  // Same time, mixed priorities, pushed out of priority order.
  q.push({1.0, 2, 0, 10, 0});
  q.push({1.0, 0, 0, 11, 0});
  q.push({1.0, 1, 0, 12, 0});
  // Same time AND priority: insertion order breaks the tie.
  q.push({1.0, 1, 0, 13, 0});
  const auto got = drain(q);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[0].kind, 11);  // priority 0
  EXPECT_EQ(got[1].kind, 12);  // priority 1, pushed before 13
  EXPECT_EQ(got[2].kind, 13);  // priority 1, pushed after 12
  EXPECT_EQ(got[3].kind, 10);  // priority 2
}

TEST(EventQueue, PushAssignsStrictlyIncreasingSeqStartingAtOne) {
  rs::EventQueue q;
  const auto s1 = q.push({0.0, 0, 0, 0, 0});
  const auto s2 = q.push({0.0, 0, 0, 0, 0});
  const auto s3 = q.push({0.0, 0, 0, 0, 0});
  EXPECT_EQ(s1, 1u);
  EXPECT_EQ(s2, 2u);
  EXPECT_EQ(s3, 3u);
  // The caller-supplied seq field is ignored and overwritten.
  rs::EventQueue q2;
  const auto s = q2.push({0.0, 0, 999, 0, 0});
  EXPECT_EQ(s, 1u);
  EXPECT_EQ(q2.pop()->seq, 1u);
}

TEST(EventQueue, PeekMatchesPopWithoutRemoving) {
  rs::EventQueue q;
  q.push({2.0, 0, 0, 1, 0});
  q.push({1.0, 0, 0, 2, 0});
  const auto peeked = q.peek();
  ASSERT_TRUE(peeked);
  EXPECT_EQ(peeked->kind, 2);
  EXPECT_EQ(q.size(), 2u);
  const auto popped = q.pop();
  ASSERT_TRUE(popped);
  EXPECT_EQ(popped->kind, peeked->kind);
  EXPECT_EQ(popped->seq, peeked->seq);
  EXPECT_EQ(q.size(), 1u);
}

// Randomized interleavings against a reference model: sort every pushed
// event by (t_s, priority, seq) and the queue must pop exactly that trace,
// whatever order the pushes arrived in.
TEST(EventQueue, RandomizedPushPopMatchesReferenceSort) {
  rem::common::Rng rng(0x5eedu);
  for (int round = 0; round < 50; ++round) {
    rs::EventQueue q;
    std::vector<rs::Event> pushed;
    const int n = static_cast<int>(1 + rng.uniform_int(0, 119));
    for (int i = 0; i < n; ++i) {
      rs::Event e;
      // Coarse timestamp grid forces plenty of exact ties.
      e.t_s = static_cast<double>(rng.uniform_int(0, 9)) * 0.5;
      e.priority = static_cast<int>(rng.uniform_int(0, 3));
      e.kind = i;
      e.arg = round;
      e.seq = q.push(e);
      pushed.push_back(e);
    }
    std::vector<rs::Event> expected = pushed;
    std::sort(expected.begin(), expected.end(),
              [](const rs::Event& a, const rs::Event& b) {
                return std::make_tuple(a.t_s, a.priority, a.seq) <
                       std::make_tuple(b.t_s, b.priority, b.seq);
              });
    const auto got = drain(q);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, expected[i].seq) << "round " << round;
      EXPECT_EQ(got[i].kind, expected[i].kind) << "round " << round;
      EXPECT_EQ(got[i].t_s, expected[i].t_s) << "round " << round;
    }
  }
}

// Same events, two different push orders: identical pop traces. This is
// the platform-determinism property the fleet engine relies on.
TEST(EventQueue, PopTraceIndependentOfHeapInternals) {
  std::vector<rs::Event> evs;
  for (int i = 0; i < 40; ++i)
    evs.push_back({static_cast<double>(i % 5), i % 3, 0, i, 0});

  rs::EventQueue fwd;
  for (const auto& e : evs) fwd.push(e);
  const auto a = drain(fwd);

  // Reversed pushes get different seqs, so compare (t, priority, kind)
  // traces after normalizing the seq tiebreak: within equal (t, priority)
  // the reversed queue dispatches in its own insertion order.
  rs::EventQueue rev;
  for (auto it = evs.rbegin(); it != evs.rend(); ++it) rev.push(*it);
  const auto b = drain(rev);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].t_s, b[i].t_s);
    EXPECT_EQ(a[i].priority, b[i].priority);
  }
}

TEST(EventQueue, CancelRemovesPendingEvent) {
  rs::EventQueue q;
  const auto keep = q.push({1.0, 0, 0, 1, 0});
  const auto kill = q.push({2.0, 0, 0, 2, 0});
  EXPECT_TRUE(q.cancel(kill));
  EXPECT_EQ(q.size(), 1u);
  const auto got = drain(q);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].seq, keep);
}

TEST(EventQueue, CancelEdges) {
  rs::EventQueue q;
  const auto s = q.push({1.0, 0, 0, 1, 0});
  EXPECT_FALSE(q.cancel(s + 100));  // unknown handle
  EXPECT_TRUE(q.cancel(s));
  EXPECT_FALSE(q.cancel(s));  // double-cancel
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(q.pop().has_value());
  // A dispatched event's handle is dead too.
  const auto s2 = q.push({1.0, 0, 0, 2, 0});
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.cancel(s2));
}

TEST(EventQueue, CancelHeadThenPopSkipsDeadEntry) {
  rs::EventQueue q;
  const auto head = q.push({1.0, 0, 0, 1, 0});
  q.push({2.0, 0, 0, 2, 0});
  EXPECT_TRUE(q.cancel(head));
  const auto got = q.pop();
  ASSERT_TRUE(got);
  EXPECT_EQ(got->kind, 2);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RescheduleMovesEventAndIssuesFreshSeq) {
  rs::EventQueue q;
  const auto a = q.push({5.0, 0, 0, 1, 7});
  const auto b = q.push({2.0, 0, 0, 2, 0});
  const auto a2 = q.reschedule(a, 1.0);
  ASSERT_NE(a2, 0u);
  EXPECT_NE(a2, a);
  EXPECT_FALSE(q.cancel(a));  // old handle superseded
  const auto got = drain(q);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].seq, a2);
  EXPECT_EQ(got[0].kind, 1);  // kind/arg preserved
  EXPECT_EQ(got[0].arg, 7);
  EXPECT_EQ(got[0].t_s, 1.0);
  EXPECT_EQ(got[1].seq, b);
}

TEST(EventQueue, RescheduleReentersInsertionOrderAmongPeers) {
  rs::EventQueue q;
  const auto a = q.push({1.0, 0, 0, 1, 0});
  q.push({1.0, 0, 0, 2, 0});
  // Rescheduling `a` to the same instant demotes it behind its peer: the
  // fresh seq puts it last among equal (t, priority).
  ASSERT_NE(q.reschedule(a, 1.0), 0u);
  const auto got = drain(q);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].kind, 2);
  EXPECT_EQ(got[1].kind, 1);
}

TEST(EventQueue, RescheduleDeadHandleReturnsZero) {
  rs::EventQueue q;
  const auto s = q.push({1.0, 0, 0, 1, 0});
  EXPECT_TRUE(q.cancel(s));
  EXPECT_EQ(q.reschedule(s, 2.0), 0u);
  EXPECT_EQ(q.reschedule(12345u, 2.0), 0u);  // never-issued handle
  // A rescheduled-away handle is dead as well.
  const auto x = q.push({1.0, 0, 0, 2, 0});
  const auto x2 = q.reschedule(x, 3.0);
  ASSERT_NE(x2, 0u);
  EXPECT_EQ(q.reschedule(x, 4.0), 0u);
  ASSERT_NE(q.reschedule(x2, 4.0), 0u);
}

// Randomized churn: interleave pushes, cancels, reschedules, and pops and
// check the surviving trace against a reference model of live events.
TEST(EventQueue, RandomizedChurnMatchesModel) {
  rem::common::Rng rng(0xc0ffeeu);
  for (int round = 0; round < 20; ++round) {
    rs::EventQueue q;
    std::vector<rs::Event> live;  // reference model, keyed by seq
    const int ops = 200;
    for (int i = 0; i < ops; ++i) {
      const int op = static_cast<int>(rng.uniform_int(0, 9));
      if (op < 6 || live.empty()) {
        rs::Event e;
        e.t_s = static_cast<double>(rng.uniform_int(0, 7));
        e.priority = static_cast<int>(rng.uniform_int(0, 2));
        e.kind = i;
        e.seq = q.push(e);
        live.push_back(e);
      } else if (op < 8) {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        EXPECT_TRUE(q.cancel(live[idx].seq));
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
      } else {
        const auto idx = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
        const double nt = static_cast<double>(rng.uniform_int(0, 7));
        const auto ns = q.reschedule(live[idx].seq, nt);
        ASSERT_NE(ns, 0u);
        live[idx].t_s = nt;
        live[idx].seq = ns;
      }
      ASSERT_EQ(q.size(), live.size());
    }
    std::sort(live.begin(), live.end(),
              [](const rs::Event& a, const rs::Event& b) {
                return std::make_tuple(a.t_s, a.priority, a.seq) <
                       std::make_tuple(b.t_s, b.priority, b.seq);
              });
    const auto got = drain(q);
    ASSERT_EQ(got.size(), live.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].seq, live[i].seq) << "round " << round;
      EXPECT_EQ(got[i].kind, live[i].kind) << "round " << round;
    }
  }
}
