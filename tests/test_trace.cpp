#include "core/legacy_manager.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "crossband/movement.hpp"
#include "phy/channel_est.hpp"
#include "phy/bler_model.hpp"
#include "trace/eventlog.hpp"
#include "trace/scenario.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rt = rem::trace;
namespace rs = rem::sim;
namespace rm = rem::mobility;

// ---------- Scenario synthesis ----------

TEST(Scenario, SpacingTracksSpeedBucket) {
  const auto slow = rt::make_scenario(rt::Route::kLowMobilityLA, 60.0);
  const auto fast = rt::make_scenario(rt::Route::kBeijingShanghai, 330.0);
  // Faster buckets use shorter target intervals, but their absolute
  // spacing still reflects speed * interval.
  EXPECT_GT(fast.deployment.site_spacing_mean_m, 700.0);
  EXPECT_GT(slow.deployment.site_spacing_mean_m, 700.0);
  EXPECT_EQ(fast.sim.speed_kmh, 330.0);
}

TEST(Scenario, RouteLenCoversDuration) {
  const auto sc = rt::make_scenario(rt::Route::kBeijingShanghai, 300.0,
                                    1000.0);
  EXPECT_GE(sc.deployment.route_len_m, 300.0 / 3.6 * 1000.0);
}

TEST(Scenario, PolicyMixDiffersByRoute) {
  const auto la = rt::make_scenario(rt::Route::kLowMobilityLA, 60.0);
  const auto bt = rt::make_scenario(rt::Route::kBeijingTaiyuan, 250.0);
  EXPECT_LT(la.policy_mix.proactive_a3_prob,
            bt.policy_mix.proactive_a3_prob);
  EXPECT_GT(la.policy_mix.intra_ttt_s, bt.policy_mix.intra_ttt_s);
}

TEST(Scenario, SynthesizedPoliciesAreMultiStage) {
  const auto sc = rt::make_scenario(rt::Route::kBeijingShanghai, 300.0);
  rem::common::Rng rng(3);
  const auto cells = rs::make_rail_deployment(sc.deployment, rng);
  const auto policies = rt::synthesize_policies(cells, sc.policy_mix, rng);
  EXPECT_EQ(policies.size(), cells.size());
  int multi = 0, proactive = 0;
  for (const auto& [id, p] : policies) {
    if (p.is_multi_stage()) ++multi;
    for (const auto& r : p.rules)
      if (r.event.type == rm::EventType::kA3 && r.event.offset < 0)
        ++proactive;
  }
  EXPECT_EQ(multi, static_cast<int>(policies.size()));
  EXPECT_GT(proactive, 0);  // the §3.2 proactive mix
}

TEST(Scenario, ToPolicyCellsPreservesIds) {
  const auto sc = rt::make_scenario(rt::Route::kBeijingTaiyuan, 250.0);
  rem::common::Rng rng(5);
  const auto cells = rs::make_rail_deployment(sc.deployment, rng);
  const auto policies = rt::synthesize_policies(cells, sc.policy_mix, rng);
  const auto pcs = rt::to_policy_cells(cells, policies);
  ASSERT_EQ(pcs.size(), cells.size());
  for (std::size_t i = 0; i < pcs.size(); ++i)
    EXPECT_EQ(pcs[i].id, cells[i].id);
}

// ---------- Event log ----------

namespace {
rs::EventLog sample_log() {
  return {
      {1.5, rs::EventKind::kMeasurementTriggered, 3, 4, 8.5},
      {1.9, rs::EventKind::kReportDelivered, 3, 4, 7.25},
      {2.0, rs::EventKind::kHoCommandDelivered, 3, 4, 6.0},
      {2.05, rs::EventKind::kHandoverComplete, 3, 4, 6.0},
      {9.1, rs::EventKind::kReportLost, 4, 5, -2.5},
      {9.9, rs::EventKind::kRadioLinkFailure, 4, -1, -8.0},
      {10.7, rs::EventKind::kReestablished, 5, -1, 0.0},
      {20.0, rs::EventKind::kHandoverComplete, 5, 6, 11.0},
  };
}
}  // namespace

TEST(EventLog, CsvRoundTrip) {
  const auto log = sample_log();
  std::stringstream ss;
  rt::write_event_csv(log, ss);
  const auto back = rt::read_event_csv(ss);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_NEAR(back[i].t_s, log[i].t_s, 1e-9);
    EXPECT_EQ(back[i].kind, log[i].kind);
    EXPECT_EQ(back[i].serving_cell, log[i].serving_cell);
    EXPECT_EQ(back[i].target_cell, log[i].target_cell);
    EXPECT_NEAR(back[i].serving_snr_db, log[i].serving_snr_db, 1e-9);
  }
}

TEST(EventLog, CsvRoundTripCoversFaultAndRecoveryKinds) {
  const rs::EventLog log = {
      {5.0, rs::EventKind::kFaultStart, 2, 1, 4.0},
      {5.2, rs::EventKind::kReportRetransmit, 2, 3, -3.0},
      {5.5, rs::EventKind::kHoCommandDuplicate, 2, 1, -4.0},
      {6.0, rs::EventKind::kT304Expiry, 2, 3, -9.0},
      {6.4, rs::EventKind::kDegradedEnter, 2, -1, -5.0},
      {7.9, rs::EventKind::kDegradedExit, 2, -1, 2.0},
      {13.0, rs::EventKind::kFaultEnd, 2, 1, 0.0},
  };
  std::stringstream ss;
  rt::write_event_csv(log, ss);
  const auto back = rt::read_event_csv(ss);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(back[i].kind, log[i].kind);
    EXPECT_EQ(back[i].target_cell, log[i].target_cell);
  }
  const auto s = rt::summarize_event_log(log);
  EXPECT_EQ(s.fault_windows, 1u);
  EXPECT_EQ(s.report_retransmits, 1u);
  EXPECT_EQ(s.duplicate_commands, 1u);
  EXPECT_EQ(s.t304_expiries, 1u);
  EXPECT_EQ(s.degraded_episodes, 1u);
}

TEST(EventLog, RejectsMalformedInput) {
  std::stringstream no_header("1.0,handover_complete,1,2,3\n");
  EXPECT_THROW(rt::read_event_csv(no_header), std::runtime_error);
  std::stringstream bad_kind("t_s,kind,serving_cell,target_cell,"
                             "serving_snr_db\n1.0,warp_drive,1,2,3\n");
  EXPECT_THROW(rt::read_event_csv(bad_kind), std::runtime_error);
  std::stringstream bad_num("t_s,kind,serving_cell,target_cell,"
                            "serving_snr_db\nxyz,handover_complete,1,2,3\n");
  EXPECT_THROW(rt::read_event_csv(bad_num), std::runtime_error);
}

TEST(EventLog, RejectionNamesLineAndContext) {
  // A short row is a field-count error naming the line number, not a
  // misleading conversion failure.
  std::stringstream short_row("t_s,kind,serving_cell,target_cell,"
                              "serving_snr_db\n1.0,handover_complete,1,2,3\n"
                              "2.0,report_lost,4\n");
  try {
    rt::read_event_csv(short_row);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected 5 fields, got 3"), std::string::npos)
        << msg;
  }
  // A bad numeric field names the field and quotes the offending text.
  std::stringstream bad_cell("t_s,kind,serving_cell,target_cell,"
                             "serving_snr_db\n1.0,report_lost,4x,2,3\n");
  try {
    rt::read_event_csv(bad_cell);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("serving_cell"), std::string::npos) << msg;
    EXPECT_NE(msg.find("'4x'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  }
  // An unknown kind is quoted too.
  std::stringstream bad_kind("t_s,kind,serving_cell,target_cell,"
                             "serving_snr_db\n1.0,warp_drive,1,2,3\n");
  try {
    rt::read_event_csv(bad_kind);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("'warp_drive'"),
              std::string::npos);
  }
}

TEST(EventLog, FuzzedInputNeverCrashesAndAlwaysNamesContext) {
  // Deterministic fuzz over structured corruptions of a valid file:
  // truncated lines, embedded delimiters, out-of-range enum/int/double
  // text, shuffled bytes. Every input must either parse or throw a
  // std::runtime_error whose message carries the "event CSV" context —
  // never crash, hang, or leak a bare std::sto* exception.
  const std::string valid =
      "t_s,kind,serving_cell,target_cell,serving_snr_db\n"
      "1.0,handover_complete,1,2,3.5\n"
      "2.0,radio_link_failure,2,-1,-9.25\n"
      "3.5,reestablished,0,-1,1.0\n";
  const auto feed = [](const std::string& text) {
    std::stringstream is(text);
    try {
      (void)rt::read_event_csv(is);
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("event CSV"), std::string::npos)
          << "input: " << text;
    }
    // Any other exception type escapes and fails the test.
  };

  rem::common::Rng rng(2024);
  const auto pick = [&rng](std::size_t n) {  // uniform index in [0, n)
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  };
  for (int trial = 0; trial < 400; ++trial) {
    std::string s = valid;
    switch (trial % 5) {
      case 0:  // truncate anywhere, including mid-field and mid-header
        s = s.substr(0, pick(s.size() + 1));
        break;
      case 1: {  // inject a delimiter / newline / NUL at a random spot
        const char inject[] = {',', '\n', '\r', '\0', ';'};
        s.insert(pick(s.size() + 1), 1, inject[pick(5)]);
        break;
      }
      case 2: {  // replace the kind with out-of-range enum spellings
        const char* kinds[] = {"15", "-1", "999999", "handover_completex",
                               "HANDOVER_COMPLETE", ""};
        const std::string k = kinds[pick(6)];
        const auto pos = s.find("handover_complete");
        s = s.substr(0, pos) + k + s.substr(pos + 17);
        break;
      }
      case 3: {  // replace a numeric field with overflow/garbage text
        const char* nums[] = {"1e999", "99999999999999999999", "nan(",
                              "0x1p+2000", "--3", "3..5"};
        const auto pos = s.find("3.5");
        s = s.substr(0, pos) + nums[pick(6)] + s.substr(pos + 3);
        break;
      }
      case 4: {  // swap two random bytes
        std::swap(s[pick(s.size())], s[pick(s.size())]);
        break;
      }
    }
    feed(s);
  }

  // Pinned edge cases the random walk might miss.
  feed("");                                   // empty file
  feed("\n\n\n");                             // only blank lines
  feed(std::string(1 << 16, ','));            // delimiter flood
  feed("t_s,kind,serving_cell,target_cell,serving_snr_db\n" +
       std::string(1 << 16, 'x') + "\n");     // one enormous field
  feed("t_s,kind,serving_cell,target_cell,serving_snr_db\n"
       "1.0,handover_complete,1,2,3.5,extra\n");  // too many fields
}

TEST(EventLog, Summary) {
  const auto s = rt::summarize_event_log(sample_log());
  EXPECT_EQ(s.handovers, 2u);
  EXPECT_EQ(s.failures, 1u);
  EXPECT_EQ(s.report_losses, 1u);
  EXPECT_EQ(s.command_losses, 0u);
  EXPECT_NEAR(s.mean_handover_interval_s, 20.0 - 2.05, 1e-9);
}

TEST(EventLog, SimulatorRecordsConsistentLog) {
  const auto sc = rt::make_scenario(rt::Route::kBeijingShanghai, 300.0,
                                    400.0);
  rem::common::Rng rng(7);
  auto cells = rs::make_rail_deployment(sc.deployment, rng);
  rs::RadioEnv env(cells, sc.propagation, rng.fork());
  auto policies = rt::synthesize_policies(cells, sc.policy_mix, rng);
  rem::phy::LogisticBlerModel bler;
  rem::core::LegacyConfig lc;
  lc.policies = policies;
  rem::core::LegacyManager mgr(lc);
  auto sim_cfg = sc.sim;
  sim_cfg.record_events = true;
  rs::Simulator sim(env, sim_cfg, bler, rng.fork());
  const auto stats = sim.run(mgr);

  ASSERT_FALSE(stats.events.empty());
  const auto summary = rt::summarize_event_log(stats.events);
  EXPECT_EQ(static_cast<int>(summary.handovers),
            stats.successful_handovers);
  EXPECT_EQ(static_cast<int>(summary.failures), stats.failures);
  // Timestamps are non-decreasing.
  for (std::size_t i = 1; i < stats.events.size(); ++i)
    EXPECT_GE(stats.events[i].t_s, stats.events[i - 1].t_s);
  // CSV round trip of a real log.
  std::stringstream ss;
  rt::write_event_csv(stats.events, ss);
  EXPECT_EQ(rt::read_event_csv(ss).size(), stats.events.size());
}

// ---------- Movement estimation ----------

TEST(Movement, SpeedFromLosDoppler) {
  // 350 km/h at 2 GHz: nu_max = v f / c ~ 648 Hz.
  const double v = 350.0 / 3.6;
  const double f = 2.0e9;
  const double nu = v * f / rem::common::kSpeedOfLight;
  std::vector<rem::crossband::ExtractedPath> paths = {
      {100e-9, nu, 1.0},          // LOS, aligned
      {400e-9, -0.3 * nu, 0.2}};  // scatterer behind
  const auto est = rem::crossband::estimate_movement(paths, f);
  ASSERT_TRUE(est.has_value());
  EXPECT_NEAR(est->speed_mps, v, 0.5);
  EXPECT_DOUBLE_EQ(est->heading_sign, 1.0);
  EXPECT_NEAR(est->delay_spread_m, 300e-9 * rem::common::kSpeedOfLight,
              1.0);
  EXPECT_NEAR(est->doppler_spread_hz, 1.3 * nu, 1.0);
}

TEST(Movement, RecedingHeading) {
  std::vector<rem::crossband::ExtractedPath> paths = {
      {0.0, -500.0, 1.0}};
  const auto est = rem::crossband::estimate_movement(paths, 2e9);
  ASSERT_TRUE(est.has_value());
  EXPECT_DOUBLE_EQ(est->heading_sign, -1.0);
}

TEST(Movement, EmptyInput) {
  EXPECT_FALSE(
      rem::crossband::estimate_movement({}, 2e9).has_value());
  std::vector<rem::crossband::ExtractedPath> p = {{0, 100, 1}};
  EXPECT_FALSE(rem::crossband::estimate_movement(p, 0.0).has_value());
}

TEST(Movement, EndToEndFromSvdExtraction) {
  // Full pipeline: draw an HST channel, estimate it, run Algorithm 1,
  // then recover the client's speed from the extracted paths.
  rem::common::Rng rng(11);
  rem::channel::ChannelDrawConfig draw;
  draw.profile = rem::channel::Profile::kHST350;
  draw.speed_mps = 350.0 / 3.6;
  draw.carrier_hz = 1.88e9;
  const auto ch = rem::channel::draw_channel(draw, rng);

  rem::phy::Numerology num;
  num.num_subcarriers = 64;
  num.num_symbols = 32;  // finer Doppler resolution for speed estimation
  num.cp_len = 16;
  rem::phy::DdChannelEstimator dd(num);
  rem::crossband::CrossbandInput in;
  in.num = num;
  in.f1_hz = 1.88e9;
  in.f2_hz = 1.88e9;  // same band: pure analysis run
  in.h1_dd = dd.estimate(ch, 25.0, rng).h;
  in.h1_tf = rem::dsp::Matrix(64, 32);

  rem::crossband::RemSvdEstimator est;
  est.estimate(in);
  const auto mv =
      rem::crossband::estimate_movement(est.last_paths(), 1.88e9);
  ASSERT_TRUE(mv.has_value());
  // LOS Doppler is within [0.9, 1.0] nu_max by construction, so the
  // speed estimate lands within ~25% of truth.
  EXPECT_NEAR(mv->speed_mps, draw.speed_mps, 0.25 * draw.speed_mps);
}
