#include "common/rng.hpp"
#include "dsp/fft.hpp"
#include "dsp/fft_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

using rem::dsp::cd;
using rem::dsp::CVec;
using rem::dsp::FftPlan;
using rem::dsp::FftScratch;

namespace {

CVec random_vec(std::size_t n, rem::common::Rng& rng) {
  CVec v(n);
  for (auto& x : v) x = rng.complex_gaussian(1.0);
  return v;
}

double max_err(const CVec& a, const CVec& b) {
  double m = 0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

// Direct O(n^2) DFT as the reference.
CVec dft_ref(const CVec& x) {
  const std::size_t n = x.size();
  CVec out(n);
  for (std::size_t k = 0; k < n; ++k) {
    cd sum(0, 0);
    for (std::size_t t = 0; t < n; ++t) {
      const double ang = -2.0 * std::numbers::pi *
                         static_cast<double>(k * t) / static_cast<double>(n);
      sum += x[t] * cd(std::cos(ang), std::sin(ang));
    }
    out[k] = sum;
  }
  return out;
}

}  // namespace

// The plan-cache twiddle tables come straight from cos/sin per entry, so
// round-trip error stays tiny even for large transforms where the old
// incremental `w *= wlen` recurrence drifted.
class PlanRoundTripTight : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PlanRoundTripTight, RoundTripErrorBelow1e10) {
  const std::size_t n = GetParam();
  rem::common::Rng rng(n + 17);
  const CVec x = random_vec(n, rng);
  CVec y = x;
  rem::dsp::fft(y);
  rem::dsp::ifft(y);
  EXPECT_LT(max_err(x, y), 1e-10) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Pow2UpTo64k, PlanRoundTripTight,
                         ::testing::Values(2, 16, 256, 1024, 4096, 16384,
                                           65536));

INSTANTIATE_TEST_SUITE_P(BluesteinAwkward, PlanRoundTripTight,
                         ::testing::Values(1, 12, 600, 1499));

TEST(FftPlan, MatchesDirectDftBluestein) {
  for (const std::size_t n : {1UL, 12UL, 600UL}) {
    rem::common::Rng rng(n);
    const CVec x = random_vec(n, rng);
    const CVec ref = dft_ref(x);
    CVec y = x;
    rem::dsp::fft(y);
    EXPECT_LT(max_err(ref, y), 1e-8 * std::max<double>(1.0, n)) << "n=" << n;
  }
}

TEST(FftPlan, CacheReturnsSameInstance) {
  const auto a = FftPlan::get(600);
  const auto b = FftPlan::get(600);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_GE(FftPlan::cache_size(), 1u);
}

TEST(FftPlan, BluesteinPlanSharesPow2ConvPlan) {
  const auto p = FftPlan::get(600);
  EXPECT_TRUE(p->uses_bluestein());
  const auto q = FftPlan::get(1024);
  EXPECT_FALSE(q->uses_bluestein());
}

TEST(FftPlan, TransformMatchesFreeFunctions) {
  for (const std::size_t n : {64UL, 60UL}) {
    rem::common::Rng rng(n + 3);
    const CVec x = random_vec(n, rng);

    CVec a = x;
    rem::dsp::fft(a);
    CVec b = x;
    FftScratch scratch;
    FftPlan::get(n)->transform(b.data(), 1, false, 1.0, scratch);
    EXPECT_LT(max_err(a, b), 1e-12);

    CVec c = x;
    rem::dsp::ifft(c);
    CVec d = x;
    FftPlan::get(n)->transform(d.data(), 1, true, 1.0, scratch);
    EXPECT_LT(max_err(c, d), 1e-12);
  }
}

TEST(FftPlan, ScaleIsAppliedAfterTransform) {
  const std::size_t n = 32;
  rem::common::Rng rng(5);
  const CVec x = random_vec(n, rng);
  FftScratch scratch;
  CVec a = x;
  FftPlan::get(n)->transform(a.data(), 1, false, 2.5, scratch);
  CVec b = x;
  rem::dsp::fft(b);
  for (auto& v : b) v *= 2.5;
  EXPECT_LT(max_err(a, b), 1e-12);
}

// A strided transform over an interleaved buffer must equal gathering the
// stride into a contiguous vector, transforming, and scattering back.
class PlanStrided
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PlanStrided, MatchesGatherTransformScatter) {
  const auto [n, stride] = GetParam();
  rem::common::Rng rng(n * 31 + stride);
  CVec buf(n * stride);
  for (auto& v : buf) v = rng.complex_gaussian(1.0);
  const CVec orig = buf;

  for (const bool invert : {false, true}) {
    CVec strided = orig;
    FftScratch scratch;
    FftPlan::get(n)->transform(strided.data(), stride, invert, 1.0, scratch);

    CVec ref_vec(n);
    for (std::size_t k = 0; k < n; ++k) ref_vec[k] = orig[k * stride];
    if (invert)
      rem::dsp::ifft(ref_vec);
    else
      rem::dsp::fft(ref_vec);

    for (std::size_t k = 0; k < n; ++k)
      EXPECT_LT(std::abs(strided[k * stride] - ref_vec[k]), 1e-12)
          << "n=" << n << " stride=" << stride << " invert=" << invert;
    // Elements off the stride must be untouched.
    for (std::size_t i = 0; i < buf.size(); ++i)
      if (i % stride != 0)
        EXPECT_EQ(strided[i], orig[i]) << "clobbered off-stride element";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlanStrided,
    ::testing::Values(std::pair<std::size_t, std::size_t>{8, 3},
                      std::pair<std::size_t, std::size_t>{16, 14},
                      std::pair<std::size_t, std::size_t>{12, 5},
                      std::pair<std::size_t, std::size_t>{600, 14}));

TEST(FftPlan, ScratchReuseAcrossSizesIsSafe) {
  FftScratch scratch;
  rem::common::Rng rng(23);
  for (const std::size_t n : {600UL, 64UL, 1499UL, 8UL}) {
    const CVec x = random_vec(n, rng);
    CVec y = x;
    FftPlan::get(n)->transform(y.data(), 1, false, 1.0, scratch);
    FftPlan::get(n)->transform(y.data(), 1, true, 1.0, scratch);
    EXPECT_LT(max_err(x, y), 1e-10) << "n=" << n;
  }
}
