#include "channel/profiles.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "crossband/metrics.hpp"
#include "crossband/optml.hpp"
#include "crossband/r2f2.hpp"
#include "crossband/rem_svd.hpp"
#include "phy/channel_est.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cb = rem::crossband;
namespace rch = rem::channel;
namespace rp = rem::phy;
using rem::dsp::Matrix;
using rem::dsp::cd;

namespace {
rp::Numerology grid_cfg() {
  rp::Numerology num;
  num.num_subcarriers = 64;
  num.num_symbols = 16;
  num.subcarrier_spacing_hz = 15e3;
  num.cp_len = 16;
  return num;
}

cb::EvalConfig hsr_eval(std::size_t trials) {
  cb::EvalConfig cfg;
  cfg.draw.profile = rch::Profile::kHST350;
  cfg.draw.speed_mps = rem::common::kmh_to_mps(350);
  cfg.draw.carrier_hz = 1.88e9;
  cfg.num = grid_cfg();
  cfg.f1_hz = 1.88e9;
  cfg.f2_hz = 2.6e9;
  cfg.trials = trials;
  return cfg;
}
}  // namespace

TEST(RemSvd, RecoversSinglePathParameters) {
  const auto num = grid_cfg();
  rch::Path p;
  p.gain = cd(0.8, 0.2);
  p.delay_s = 2.0 * num.delay_res_s();
  p.doppler_hz = 3.0 * num.doppler_res_hz();
  rch::MultipathChannel ch({p});

  rp::DdChannelEstimator dd(num);
  cb::CrossbandInput in;
  in.num = num;
  in.f1_hz = 1.88e9;
  in.f2_hz = 2.6e9;
  in.h1_dd = dd.estimate_noiseless(ch).h;
  in.h1_tf = ch.tf_matrix(num.num_subcarriers, num.num_symbols,
                          num.subcarrier_spacing_hz,
                          num.symbol_duration_s());

  cb::RemSvdEstimator est;
  const auto out = est.estimate(in);
  ASSERT_FALSE(est.last_paths().empty());
  const auto& path = est.last_paths()[0];
  EXPECT_NEAR(path.delay_s, p.delay_s, 0.05 * num.delay_res_s());
  EXPECT_NEAR(path.doppler_hz, p.doppler_hz * 2.6 / 1.88,
              0.05 * num.doppler_res_hz());
  EXPECT_NEAR(path.attenuation, std::abs(p.gain), 0.05);
  EXPECT_TRUE(out.is_delay_doppler);
}

TEST(RemSvd, PredictedBand2MatchesTruthSinglePath) {
  const auto num = grid_cfg();
  rch::Path p;
  p.gain = cd(0.7, -0.4);
  p.delay_s = 1.0 * num.delay_res_s();
  p.doppler_hz = 2.0 * num.doppler_res_hz();
  rch::MultipathChannel ch1({p});
  const double ratio = 2.6 / 1.88;
  const auto ch2 = ch1.with_doppler_scaled(ratio);

  rp::DdChannelEstimator dd(num);
  cb::CrossbandInput in;
  in.num = num;
  in.f1_hz = 1.88e9;
  in.f2_hz = 2.6e9;
  in.h1_dd = dd.estimate_noiseless(ch1).h;
  in.h1_tf = Matrix(num.num_subcarriers, num.num_symbols);

  cb::RemSvdEstimator est;
  const auto out = est.estimate(in);
  const auto truth = dd.estimate_noiseless(ch2).h;
  const double rel = (out.h2 - truth).frobenius_norm() /
                     truth.frobenius_norm();
  EXPECT_LT(rel, 0.15) << "relative DD prediction error " << rel;
}

TEST(RemSvd, MultipathHsrSnrErrorSmall) {
  rem::common::Rng rng(11);
  cb::RemSvdEstimator est;
  auto cfg = hsr_eval(60);
  const auto res = cb::evaluate_estimator(est, cfg, rng);
  // Fig. 12: <= 2 dB error for >= 90% of measurements.
  EXPECT_LT(res.p90_snr_error_db, 2.0)
      << "p90 error " << res.p90_snr_error_db;
  EXPECT_GT(res.decision_agreement, 0.85);
}

TEST(RemSvd, HandlesNoisyMeasurement) {
  rem::common::Rng rng(13);
  cb::RemSvdEstimator est;
  auto cfg = hsr_eval(40);
  cfg.measure_snr_db = 10.0;  // poorer pilot SNR
  const auto res = cb::evaluate_estimator(est, cfg, rng);
  EXPECT_LT(res.mean_snr_error_db, 3.0);
}

TEST(R2f2, GoodOnStaticChannel) {
  rem::common::Rng rng(17);
  cb::R2f2Estimator est;
  auto cfg = hsr_eval(40);
  cfg.draw.profile = rch::Profile::kEVA;
  cfg.draw.speed_mps = 0.0;  // static: R2F2's home turf
  const auto res = cb::evaluate_estimator(est, cfg, rng);
  EXPECT_LT(res.mean_snr_error_db, 1.5)
      << "static mean error " << res.mean_snr_error_db;
}

TEST(R2f2, DegradesUnderDoppler) {
  rem::common::Rng rng(19);
  cb::R2f2Estimator fast{cb::R2f2Config{6, 4, 40}};
  auto cfg_static = hsr_eval(30);
  cfg_static.draw.profile = rch::Profile::kEVA;
  cfg_static.draw.speed_mps = 0.0;
  const auto rs = cb::evaluate_estimator(fast, cfg_static, rng);
  auto cfg_fast = hsr_eval(30);
  const auto rf = cb::evaluate_estimator(fast, cfg_fast, rng);
  EXPECT_GT(rf.mean_snr_error_db, rs.mean_snr_error_db);
}

TEST(OptMl, RequiresTraining) {
  cb::OptMlEstimator est;
  cb::CrossbandInput in;
  in.num = grid_cfg();
  in.h1_tf = Matrix(64, 16);
  in.h1_dd = Matrix(64, 16);
  EXPECT_THROW(est.estimate(in), std::runtime_error);
}

TEST(OptMl, LearnsHsrStatistics) {
  rem::common::Rng rng(23);
  cb::OptMlEstimator est;
  auto cfg = hsr_eval(40);
  cb::train_optml(est, cfg, 160, rng);  // 80/20 split
  EXPECT_EQ(est.training_size(), 160u);
  const auto res = cb::evaluate_estimator(est, cfg, rng);
  EXPECT_LT(res.mean_snr_error_db, 4.0);
}

TEST(Ordering, RemBeatsBaselinesOnHsr) {
  // Fig. 13's headline: REM < OptML < R2F2 mean SNR error on HSR channels.
  rem::common::Rng rng(29);
  auto cfg = hsr_eval(50);

  cb::RemSvdEstimator rem_est;
  const auto r_rem = cb::evaluate_estimator(rem_est, cfg, rng);

  cb::OptMlEstimator optml;
  cb::train_optml(optml, cfg, 200, rng);
  const auto r_optml = cb::evaluate_estimator(optml, cfg, rng);

  cb::R2f2Estimator r2f2{cb::R2f2Config{6, 4, 60}};
  const auto r_r2f2 = cb::evaluate_estimator(r2f2, cfg, rng);

  EXPECT_LT(r_rem.mean_snr_error_db, r_optml.mean_snr_error_db)
      << "REM " << r_rem.mean_snr_error_db << " OptML "
      << r_optml.mean_snr_error_db;
  EXPECT_LT(r_optml.mean_snr_error_db, r_r2f2.mean_snr_error_db)
      << "OptML " << r_optml.mean_snr_error_db << " R2F2 "
      << r_r2f2.mean_snr_error_db;
}

TEST(Metrics, MeasureTfShape) {
  rem::common::Rng rng(31);
  rch::ChannelDrawConfig draw;
  draw.profile = rch::Profile::kEVA;
  const auto ch = rch::draw_channel(draw, rng);
  const auto num = grid_cfg();
  const auto h = cb::measure_tf(ch, num, 20.0, rng);
  EXPECT_EQ(h.rows(), num.num_subcarriers);
  EXPECT_EQ(h.cols(), num.num_symbols);
}
