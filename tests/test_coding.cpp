#include "common/rng.hpp"
#include "phy/coding.hpp"

#include <gtest/gtest.h>

namespace rp = rem::phy;
using Code = rp::ConvolutionalCode;

namespace {
std::vector<std::uint8_t> random_bits(std::size_t n, rem::common::Rng& rng) {
  std::vector<std::uint8_t> bits(n);
  for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
  return bits;
}

std::vector<double> to_llrs(const std::vector<std::uint8_t>& coded,
                            double magnitude = 4.0) {
  std::vector<double> llrs(coded.size());
  for (std::size_t i = 0; i < coded.size(); ++i)
    llrs[i] = coded[i] ? -magnitude : magnitude;
  return llrs;
}
}  // namespace

TEST(ConvCode, CodedLength) {
  EXPECT_EQ(Code::coded_length(10), 2 * (10 + 6));
  EXPECT_EQ(Code::coded_length(0), 12u);
}

TEST(ConvCode, NoiselessRoundTrip) {
  rem::common::Rng rng(1);
  for (std::size_t len : {1u, 7u, 40u, 100u, 333u}) {
    const auto bits = random_bits(len, rng);
    const auto coded = Code::encode(bits);
    EXPECT_EQ(coded.size(), Code::coded_length(len));
    const auto decoded = Code::decode(to_llrs(coded));
    EXPECT_EQ(decoded, bits) << "len=" << len;
  }
}

TEST(ConvCode, AllZeroInputGivesAllZeroOutput) {
  const std::vector<std::uint8_t> bits(20, 0);
  const auto coded = Code::encode(bits);
  for (auto c : coded) EXPECT_EQ(c, 0);
}

TEST(ConvCode, CorrectsScatteredHardErrors) {
  // Free distance of (171,133) is 10: flipping a few well-separated coded
  // bits must be correctable.
  rem::common::Rng rng(2);
  const auto bits = random_bits(120, rng);
  auto coded = Code::encode(bits);
  coded[10] ^= 1;
  coded[60] ^= 1;
  coded[130] ^= 1;
  coded[200] ^= 1;
  const auto decoded = Code::decode(to_llrs(coded));
  EXPECT_EQ(decoded, bits);
}

TEST(ConvCode, SoftInformationBeatsErasures) {
  // Zero-LLR (erased) positions should be bridged by the code.
  rem::common::Rng rng(3);
  const auto bits = random_bits(100, rng);
  const auto coded = Code::encode(bits);
  auto llrs = to_llrs(coded);
  for (std::size_t i = 20; i < 28; ++i) llrs[i] = 0.0;  // 8-bit erasure burst
  const auto decoded = Code::decode(llrs);
  EXPECT_EQ(decoded, bits);
}

TEST(ConvCode, GaussianChannelLowErrorAtHighSnr) {
  rem::common::Rng rng(4);
  int block_errors = 0;
  const int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const auto bits = random_bits(200, rng);
    const auto coded = Code::encode(bits);
    std::vector<double> llrs(coded.size());
    // BPSK over AWGN at ~4 dB Eb/N0: LLR = 2r/sigma^2.
    const double sigma = 0.6;
    for (std::size_t i = 0; i < coded.size(); ++i) {
      const double tx = coded[i] ? -1.0 : 1.0;
      const double r = tx + rng.gaussian(0, sigma);
      llrs[i] = 2.0 * r / (sigma * sigma);
    }
    const auto decoded = Code::decode(llrs);
    if (decoded != bits) ++block_errors;
  }
  EXPECT_LE(block_errors, 2);
}

TEST(ConvCode, DecodeRejectsOddLlrCount) {
  std::vector<double> llrs(13, 1.0);
  EXPECT_THROW(Code::decode(llrs), std::invalid_argument);
}

TEST(ConvCode, EncodeDeterministic) {
  const std::vector<std::uint8_t> bits = {1, 0, 1, 1, 0, 0, 1};
  EXPECT_EQ(Code::encode(bits), Code::encode(bits));
}

class ConvCodeLengths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ConvCodeLengths, RoundTripAcrossSizes) {
  rem::common::Rng rng(GetParam());
  const auto bits = random_bits(GetParam(), rng);
  const auto decoded = Code::decode(to_llrs(Code::encode(bits)));
  EXPECT_EQ(decoded, bits);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ConvCodeLengths,
                         ::testing::Values(1, 2, 5, 6, 7, 8, 16, 31, 64, 127,
                                           256, 1000));
