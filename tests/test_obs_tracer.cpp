// End-to-end tests for the span tracer and the scenario runner's metrics
// plumbing: a chaos-mode simulation ("mixed" golden fault preset) must
// yield a span trace and metrics snapshot that exactly reconcile with the
// simulator's own SimStats; the metrics/trace artifacts must round-trip;
// and seed-parallel metrics collection must be bit-identical across
// worker-thread counts.
#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "scenario_runner.hpp"
#include "testkit/golden.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace {

using rem::bench::SeedRunOptions;

constexpr double kDuration = 120.0;
constexpr double kSpeed = 300.0;
const auto kRoute = rem::trace::Route::kBeijingShanghai;

SeedRunOptions chaos_opts() {
  SeedRunOptions opts;
  opts.faults = rem::testkit::golden_fault_preset("mixed", kDuration);
  opts.collect_metrics = true;
  return opts;
}

// Run one chaos seed with an explicit tracer attached (independent of the
// runner plumbing) so the test can inspect spans directly.
struct TracedRun {
  rem::sim::SimStats stats;
  rem::obs::MetricsSnapshot metrics;
  std::vector<rem::obs::Span> spans;
  std::vector<std::string> mismatches;
};

const rem::phy::BlerModel& bler_model() {
  static rem::phy::LogisticBlerModel bler;
  return bler;
}

TracedRun traced_chaos_run(std::uint64_t seed) {
  auto sc = rem::trace::make_scenario(kRoute, kSpeed, kDuration);
  sc.sim.faults = rem::testkit::golden_fault_preset("mixed", kDuration);
  rem::common::Rng rng(seed);
  auto cells = rem::sim::make_rail_deployment(sc.deployment, rng);
  auto holes = rem::sim::make_hole_segments(sc.deployment, rng);
  rem::sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = rem::trace::synthesize_policies(cells, sc.policy_mix, rng);

  rem::core::LegacyConfig lc;
  lc.policies = policies;
  rem::core::LegacyManager legacy(lc);

  rem::obs::Registry registry;
  rem::obs::SpanTracer tracer(&registry);
  rem::sim::SimConfig cfg = sc.sim;
  cfg.observer = &tracer;
  rem::sim::Simulator s(env, cfg, bler_model(), rng.fork());

  TracedRun out;
  out.stats = s.run(legacy);
  out.metrics = registry.snapshot();
  out.spans = tracer.spans();
  out.mismatches = tracer.reconcile(out.stats);
  return out;
}

TEST(SpanTracer, ChaosRunReconcilesWithSimStats) {
  const auto run = traced_chaos_run(3);
  EXPECT_TRUE(run.mismatches.empty())
      << "reconcile mismatches:\n" +
             [&] {
               std::string all;
               for (const auto& m : run.mismatches) all += "  " + m + "\n";
               return all;
             }();
  // The chaos preset must actually provoke handovers so the test bites.
  ASSERT_GT(run.stats.handovers, 0);

  // Handover-latency histogram count == successful handovers, exactly.
  const auto* latency = run.metrics.find_histogram("sim.handover_latency_s");
  ASSERT_NE(latency, nullptr);
  EXPECT_EQ(latency->total_count(),
            static_cast<std::uint64_t>(run.stats.successful_handovers));

  // Per-cause failure counters sum to the stats' failure total.
  std::uint64_t cause_sum = 0;
  for (const auto& c : run.metrics.counters)
    if (c.name.rfind("sim.failure_cause.", 0) == 0) cause_sum += c.value;
  EXPECT_EQ(cause_sum, static_cast<std::uint64_t>(run.stats.failures));
  for (const auto& [cause, n] : run.stats.failures_by_cause) {
    const auto* c = run.metrics.find_counter(
        "sim.failure_cause." + rem::obs::failure_cause_slug(cause));
    ASSERT_NE(c, nullptr) << rem::obs::failure_cause_slug(cause);
    EXPECT_EQ(c->value, static_cast<std::uint64_t>(n));
  }

  // Counter cross-checks against SimStats fields.
  const auto counter = [&](const char* name) {
    const auto* c = run.metrics.find_counter(name);
    return c != nullptr ? c->value : 0u;
  };
  EXPECT_EQ(counter("sim.handover.attempts"),
            static_cast<std::uint64_t>(run.stats.handovers));
  EXPECT_EQ(counter("sim.handover.complete"),
            static_cast<std::uint64_t>(run.stats.successful_handovers));
  EXPECT_EQ(counter("sim.report.retransmits"),
            static_cast<std::uint64_t>(run.stats.report_retransmits));
  EXPECT_EQ(counter("sim.handover.t304_expiry"),
            static_cast<std::uint64_t>(run.stats.t304_expiries));
  EXPECT_EQ(counter("sim.command.duplicates"),
            static_cast<std::uint64_t>(run.stats.duplicate_commands));
  EXPECT_EQ(counter("sim.reestablished"),
            static_cast<std::uint64_t>(run.stats.outage_durations_s.size()));
}

TEST(SpanTracer, SpansAreWellFormed) {
  const auto run = traced_chaos_run(5);
  ASSERT_FALSE(run.spans.empty());
  std::uint64_t complete = 0;
  for (const auto& s : run.spans) {
    EXPECT_TRUE(s.kind == "handover" || s.kind == "outage") << s.kind;
    EXPECT_GE(s.end_s, s.start_s) << s.kind << " " << s.outcome;
    ASSERT_FALSE(s.phases.empty());
    EXPECT_EQ(s.phases.front().start_s, s.start_s);
    for (std::size_t i = 0; i < s.phases.size(); ++i) {
      EXPECT_GE(s.phases[i].end_s, s.phases[i].start_s);
      if (i > 0) EXPECT_EQ(s.phases[i].start_s, s.phases[i - 1].end_s);
    }
    if (s.kind == "handover") {
      EXPECT_GE(s.target, 0);
      if (s.outcome == "complete") {
        ++complete;
        // A completed attempt traversed measure -> decide -> prepare ->
        // execute (the prepare phase spans the backhaul HANDOVER
        // REQUEST/ACK handshake up to command delivery).
        ASSERT_EQ(s.phases.size(), 4u);
        EXPECT_EQ(s.phases[0].name, "measure");
        EXPECT_EQ(s.phases[1].name, "decide");
        EXPECT_EQ(s.phases[2].name, "prepare");
        EXPECT_EQ(s.phases[3].name, "execute");
        EXPECT_EQ(s.phases.back().end_s, s.end_s);
      }
    } else {
      EXPECT_TRUE(s.outcome == "reestablished" || s.outcome == "unfinished")
          << s.outcome;
    }
  }
  EXPECT_EQ(complete,
            static_cast<std::uint64_t>(run.stats.successful_handovers));
}

TEST(SpanTracer, TraceJsonlHasOneObjectPerSpan) {
  const auto run = traced_chaos_run(3);
  // Re-run the same seed with a locally held tracer so its serializer can
  // be driven directly, with a context stamp on every line.
  rem::obs::Registry registry;
  rem::obs::SpanTracer tracer(&registry);
  std::ostringstream os;
  auto sc = rem::trace::make_scenario(kRoute, kSpeed, kDuration);
  sc.sim.faults = rem::testkit::golden_fault_preset("mixed", kDuration);
  rem::common::Rng rng(3);
  auto cells = rem::sim::make_rail_deployment(sc.deployment, rng);
  auto holes = rem::sim::make_hole_segments(sc.deployment, rng);
  rem::sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = rem::trace::synthesize_policies(cells, sc.policy_mix, rng);
  rem::core::LegacyConfig lc;
  lc.policies = policies;
  rem::core::LegacyManager legacy(lc);
  rem::sim::SimConfig cfg = sc.sim;
  cfg.observer = &tracer;
  rem::sim::Simulator s(env, cfg, bler_model(), rng.fork());
  (void)s.run(legacy);
  tracer.write_trace_jsonl(os, "\"seed\": \"3\"");

  std::istringstream is(os.str());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"seed\": \"3\""), std::string::npos);
    EXPECT_NE(line.find("\"outcome\": \""), std::string::npos);
  }
  EXPECT_EQ(lines, tracer.spans().size());
  EXPECT_EQ(lines, run.spans.size()) << "same seed, same span count";
}

TEST(SpanTracer, MetricsJsonRoundTripsThroughFile) {
  const auto run = traced_chaos_run(3);
  const std::string path = "test_obs_tracer_metrics.json";
  rem::obs::write_metrics_json_file(run.metrics, path);
  const auto back = rem::obs::read_metrics_json_file(path);
  std::remove(path.c_str());
  ASSERT_EQ(back.counters.size(), run.metrics.counters.size());
  for (std::size_t i = 0; i < back.counters.size(); ++i) {
    EXPECT_EQ(back.counters[i].name, run.metrics.counters[i].name);
    EXPECT_EQ(back.counters[i].value, run.metrics.counters[i].value);
  }
  ASSERT_EQ(back.histograms.size(), run.metrics.histograms.size());
  for (std::size_t i = 0; i < back.histograms.size(); ++i) {
    EXPECT_EQ(back.histograms[i].counts, run.metrics.histograms[i].counts);
    EXPECT_EQ(back.histograms[i].sum, run.metrics.histograms[i].sum);
  }
}

// The runner merges per-seed snapshots in seed order, so the merged
// metrics must be byte-identical for 1, 2, and 8 worker threads.
TEST(ScenarioRunnerMetrics, ThreadCountInvariantSnapshots) {
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  const auto opts = chaos_opts();
  const auto render = [&](std::size_t threads) {
    const auto run = rem::bench::run_route_parallel(
        kRoute, kSpeed, kDuration, seeds, true, threads, opts);
    std::ostringstream legacy_os, rem_os;
    rem::obs::write_metrics_json(run.legacy_metrics, legacy_os);
    rem::obs::write_metrics_json(run.rem_metrics, rem_os);
    return legacy_os.str() + "\x1e" + rem_os.str();
  };
  const std::string one = render(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, render(2));
  EXPECT_EQ(one, render(8));
}

// collect_metrics must not perturb the simulation: aggregate statistics
// with metrics on equal those with metrics off.
TEST(ScenarioRunnerMetrics, CollectionDoesNotPerturbStats) {
  const std::vector<std::uint64_t> seeds = {7};
  auto opts = chaos_opts();
  const auto with = rem::bench::run_route(kRoute, kSpeed, kDuration, seeds,
                                          true, opts);
  opts.collect_metrics = false;
  const auto without = rem::bench::run_route(kRoute, kSpeed, kDuration,
                                             seeds, true, opts);
  EXPECT_EQ(with.legacy.handovers, without.legacy.handovers);
  EXPECT_EQ(with.legacy.failures, without.legacy.failures);
  EXPECT_EQ(with.rem.handovers, without.rem.handovers);
  EXPECT_EQ(with.rem.failures, without.rem.failures);
  EXPECT_EQ(with.legacy.by_cause, without.legacy.by_cause);
  EXPECT_EQ(with.rem.by_cause, without.rem.by_cause);
  EXPECT_TRUE(without.legacy_metrics.empty());
  EXPECT_FALSE(with.legacy_metrics.empty());
}

// ---- Fleet runs: per-UE tracing through sim::UeObserverDemux ----

TEST(SpanTracer, RejectsInterleavedUes) {
  // A tracer is a single-UE state machine; feeding it two UEs' streams
  // would silently interleave their spans. Repeats of the same id are the
  // demuxed-child protocol and must pass; a different id must throw.
  rem::obs::SpanTracer tracer;
  EXPECT_NO_THROW(tracer.on_ue(2));
  EXPECT_NO_THROW(tracer.on_ue(2));
  EXPECT_THROW(tracer.on_ue(3), std::logic_error);
}

TEST(SpanTracer, FleetDemuxedTracersReconcilePerUe) {
  // One tracer per UE behind the demux: each must reconcile against its
  // own UE's SimStats exactly, and every emitted trace line must carry
  // that UE's id. Construction order matches bench/fleet_runner.hpp.
  constexpr int kFleet = 3;
  constexpr double kDur = 40.0;
  auto sc = rem::trace::make_scenario(kRoute, kSpeed, kDur);
  sc.sim.faults = rem::testkit::golden_fault_preset("mixed", kDur);
  sc.sim.fleet_size = kFleet;
  sc.sim.engine = rem::sim::SimEngine::kEventQueue;

  rem::common::Rng rng(9);
  auto cells = rem::sim::make_rail_deployment(sc.deployment, rng);
  auto holes = rem::sim::make_hole_segments(sc.deployment, rng);
  rem::sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  (void)rem::trace::synthesize_policies(cells, sc.policy_mix, rng);
  rem::common::Rng mgr_rng = rng.fork();

  rem::sim::UeObserverDemux demux;
  std::vector<std::unique_ptr<rem::obs::SpanTracer>> tracers;
  for (int k = 0; k < kFleet; ++k) {
    tracers.push_back(std::make_unique<rem::obs::SpanTracer>());
    demux.add(tracers.back().get());
  }
  sc.sim.observer = &demux;

  rem::sim::Simulator s(env, sc.sim, bler_model(), rng.fork());
  const auto r =
      s.run_fleet([&](int) -> std::unique_ptr<rem::sim::MobilityManager> {
        return std::make_unique<rem::core::RemManager>(rem::core::RemConfig{},
                                                       mgr_rng.fork());
      });
  ASSERT_EQ(r.per_ue.size(), static_cast<std::size_t>(kFleet));

  std::size_t total_spans = 0;
  for (int k = 0; k < kFleet; ++k) {
    SCOPED_TRACE("ue " + std::to_string(k));
    const auto& tracer = *tracers[static_cast<std::size_t>(k)];
    const auto mismatches =
        tracer.reconcile(r.per_ue[static_cast<std::size_t>(k)]);
    for (const auto& line : mismatches) ADD_FAILURE() << line;
    total_spans += tracer.spans().size();

    std::ostringstream os;
    tracer.write_trace_jsonl(os);
    std::istringstream is(os.str());
    std::string line;
    while (std::getline(is, line))
      EXPECT_NE(line.find("\"ue\": " + std::to_string(k) + ","),
                std::string::npos)
          << line;
  }
  EXPECT_GT(total_spans, 0u);  // the run actually produced spans to label
}

}  // namespace
