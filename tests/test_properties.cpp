// Randomized property tests over module invariants.
//
// The seeded suites read REM_TEST_SEEDS (a count like "32", or an explicit
// comma list like "7,8,9") to widen or pin the sweep; unset keeps the
// committed defaults.
#include "common/rng.hpp"
#include "mobility/conflict.hpp"
#include "mobility/simplify.hpp"
#include "phy/coding.hpp"
#include "phy/scheduler.hpp"
#include "sim/tcp.hpp"
#include "testkit/seeds.hpp"

#include <gtest/gtest.h>

namespace rm = rem::mobility;
namespace rp = rem::phy;

// ---------- Theorem 2 vs the exact conflict analyzer ----------

class TheoremVsAnalyzer : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TheoremVsAnalyzer, PairwiseConflictIffSumNegative) {
  // Property (2-cell case of Theorem 2): for pure-A3 policies on the same
  // channel, the exact region analyzer finds a conflict exactly when
  // Delta(i->j) + Delta(j->i) < 0.
  rem::common::Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const double d1 = rng.uniform(-6.0, 6.0);
    const double d2 = rng.uniform(-6.0, 6.0);
    std::vector<rm::PolicyCell> cells(2);
    for (int i = 0; i < 2; ++i) {
      cells[i].id = {i, i, 100};
      rm::PolicyRule r;
      r.event = {rm::EventType::kA3, 0, 0, i == 0 ? d1 : d2, 0, 0};
      cells[i].policy.rules.push_back(r);
    }
    const bool conflict = !rm::find_two_cell_conflicts(cells).empty();
    EXPECT_EQ(conflict, d1 + d2 < 0) << "d1=" << d1 << " d2=" << d2;
  }
}

TEST_P(TheoremVsAnalyzer, RepairAlwaysConverges) {
  rem::common::Rng rng(GetParam() + 100);
  const int n = 2 + static_cast<int>(GetParam() % 5);
  std::vector<std::vector<double>> d(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      if (i != j) d[i][j] = rng.uniform(-8.0, 8.0);
  const auto repaired = rm::repair_theorem2(d);
  EXPECT_TRUE(rm::check_theorem2(repaired).empty());
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      EXPECT_GE(repaired[i][j], d[i][j] - 1e-12);  // never lowered
}

TEST_P(TheoremVsAnalyzer, WitnessPointsActuallySatisfyBothTriggers) {
  rem::common::Rng rng(GetParam() + 200);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<rm::PolicyCell> cells(2);
    for (int i = 0; i < 2; ++i) {
      cells[i].id = {i, i, i * 10};
      rm::PolicyRule r;
      const int kind = static_cast<int>(rng.uniform_int(0, 2));
      if (kind == 0)
        r.event = {rm::EventType::kA3, 0, 0, rng.uniform(-5, 2), 0, 0};
      else if (kind == 1)
        r.event = {rm::EventType::kA4, rng.uniform(-115, -95), 0, 0, 0, 0};
      else
        r.event = {rm::EventType::kA5, rng.uniform(-100, -90),
                   rng.uniform(-110, -100), 0, 0, 0};
      cells[i].policy.rules.push_back(r);
    }
    for (const auto& c : rm::find_two_cell_conflicts(cells)) {
      // The witness must satisfy both directed triggers.
      EXPECT_TRUE(rm::event_condition(cells[0].policy.rules[0].event,
                                      c.witness_ri, c.witness_rj));
      EXPECT_TRUE(rm::event_condition(cells[1].policy.rules[0].event,
                                      c.witness_rj, c.witness_ri));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, TheoremVsAnalyzer,
    ::testing::ValuesIn(rem::testkit::property_seeds({1, 2, 3, 4, 5})));

// ---------- Simplification invariants ----------

class SimplifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplifyProperty, OutputIsAlwaysSingleStageA3Only) {
  rem::common::Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    rm::CellPolicy p;
    const int rules = 1 + static_cast<int>(rng.uniform_int(0, 5));
    for (int r = 0; r < rules; ++r) {
      rm::PolicyRule rule;
      rule.stage = static_cast<int>(rng.uniform_int(0, 2));
      const int kind = static_cast<int>(rng.uniform_int(0, 4));
      rule.event.type = static_cast<rm::EventType>(kind);
      rule.event.threshold1 = rng.uniform(-120, -80);
      rule.event.threshold2 = rng.uniform(-120, -80);
      rule.event.offset = rng.uniform(-5, 5);
      if (rule.event.type == rm::EventType::kA2 && rng.bernoulli(0.5)) {
        rule.action = rm::PolicyAction::kReconfigure;
        rule.next_stage = rule.stage + 1;
      }
      p.rules.push_back(rule);
    }
    const auto s = rm::simplify_policy(p);
    EXPECT_FALSE(s.is_multi_stage());
    for (const auto& r : s.rules) {
      EXPECT_EQ(r.event.type, rm::EventType::kA3);
      EXPECT_EQ(r.stage, 0);
      EXPECT_EQ(r.action, rm::PolicyAction::kHandover);
    }
  }
}

TEST_P(SimplifyProperty, CoordinationIsIdempotent) {
  rem::common::Rng rng(GetParam() + 10);
  std::vector<rm::PolicyCell> cells(4);
  for (int i = 0; i < 4; ++i) {
    cells[i].id = {i, i, 10 * (i % 2)};
    rm::PolicyRule r;
    r.event = {rm::EventType::kA3, 0, 0, rng.uniform(-4, 4), 0, 0};
    cells[i].policy.rules.push_back(r);
  }
  rm::coordinate_offsets(cells);
  auto snapshot = cells;
  rm::coordinate_offsets(cells);
  for (int i = 0; i < 4; ++i)
    EXPECT_DOUBLE_EQ(cells[i].policy.rules[0].event.offset,
                     snapshot[i].policy.rules[0].event.offset);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SimplifyProperty,
    ::testing::ValuesIn(rem::testkit::property_seeds({11, 12, 13})));

// ---------- Scheduler invariants ----------

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, AllocationsNeverOverlapAndConserveGrid) {
  rem::common::Rng rng(GetParam());
  rp::SignalingScheduler sched(rp::Numerology::lte(48, 14),
                               rp::Modulation::kQPSK);
  std::uint64_t id = 0;
  for (int subframe = 0; subframe < 60; ++subframe) {
    const int arrivals = static_cast<int>(rng.uniform_int(0, 4));
    for (int a = 0; a < arrivals; ++a) {
      sched.enqueue({id++, static_cast<std::size_t>(rng.uniform_int(1, 60)),
                     rng.bernoulli(0.5)});
    }
    const auto alloc = sched.schedule_subframe();
    std::size_t covered = 0;
    if (alloc.signaling) {
      covered += alloc.signaling->res();
      for (const auto& d : alloc.data)
        EXPECT_FALSE(d.overlaps(*alloc.signaling));
    }
    for (const auto& d : alloc.data) covered += d.res();
    EXPECT_LE(covered, 48u * 14u);
    if (alloc.signaling) {
      // Contiguity: full-width rectangle starting at symbol 0.
      EXPECT_EQ(alloc.signaling->first_subcarrier, 0u);
      EXPECT_EQ(alloc.signaling->num_subcarriers, 48u);
      EXPECT_EQ(alloc.signaling->first_symbol, 0u);
      // Waste bounded by one symbol column.
      EXPECT_LT(alloc.unused_res, 48u);
    }
  }
}

TEST_P(SchedulerProperty, SignalingNeverStarves) {
  // Any signaling message that fits a grid is served within a bounded
  // number of subframes regardless of data pressure.
  rem::common::Rng rng(GetParam() + 50);
  rp::SignalingScheduler sched(rp::Numerology::lte(48, 14),
                               rp::Modulation::kQPSK);
  for (int i = 0; i < 200; ++i) sched.enqueue({1000u + i, 100, false});
  sched.enqueue({1, 40, true});
  bool served = false;
  for (int subframe = 0; subframe < 3 && !served; ++subframe) {
    const auto alloc = sched.schedule_subframe();
    for (const auto sid : alloc.served_signaling_ids)
      if (sid == 1) served = true;
  }
  EXPECT_TRUE(served);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, SchedulerProperty,
    ::testing::ValuesIn(rem::testkit::property_seeds({21, 22, 23})));

// ---------- Viterbi monotonicity ----------

class CodingProperty : public ::testing::TestWithParam<double> {};

TEST_P(CodingProperty, BerImprovesWithSnr) {
  // Property: over a BPSK/AWGN channel, coded BER at sigma is no worse
  // than at sigma * 1.5 (statistically, over many blocks).
  const double sigma = GetParam();
  rem::common::Rng rng(static_cast<std::uint64_t>(sigma * 1000));
  const auto run = [&](double s) {
    int errors = 0;
    for (int block = 0; block < 30; ++block) {
      std::vector<std::uint8_t> bits(150);
      for (auto& b : bits) b = rng.bernoulli(0.5) ? 1 : 0;
      const auto coded = rp::ConvolutionalCode::encode(bits);
      std::vector<double> llrs(coded.size());
      for (std::size_t i = 0; i < coded.size(); ++i) {
        const double tx = coded[i] ? -1.0 : 1.0;
        llrs[i] = 2.0 * (tx + rng.gaussian(0, s)) / (s * s);
      }
      const auto dec = rp::ConvolutionalCode::decode(llrs);
      for (std::size_t i = 0; i < bits.size(); ++i)
        errors += dec[i] != bits[i];
    }
    return errors;
  };
  EXPECT_LE(run(sigma), run(sigma * 1.5) + 5);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, CodingProperty,
                         ::testing::Values(0.4, 0.6, 0.8, 1.0));

// ---------- TCP stall bounds ----------

class TcpProperty : public ::testing::TestWithParam<double> {};

TEST_P(TcpProperty, StallBoundedByOutagePlusMaxRto) {
  rem::sim::TcpConfig cfg;
  const double outage = GetParam();
  for (double phase = 0.0; phase < 1.0; phase += 0.1) {
    const double stall = rem::sim::tcp_stall_for_outage(outage, cfg, phase);
    EXPECT_GE(stall, outage);
    EXPECT_LE(stall, outage + cfg.max_rto_s + cfg.rtt_s + cfg.base_rto_s);
  }
}

INSTANTIATE_TEST_SUITE_P(Outages, TcpProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 2.3, 5.0, 12.0,
                                           30.0));
