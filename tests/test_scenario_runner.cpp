// The seed-parallel scenario runner must produce output bit-identical to
// the serial runner for the same seed list, independent of thread count:
// every floating-point accumulation happens in merge_seed_results() in seed
// order, never in completion order.
#include "scenario_runner.hpp"

#include <gtest/gtest.h>

namespace {

using rem::bench::AggregateStats;
using rem::bench::ScenarioRun;

void expect_identical(const AggregateStats& a, const AggregateStats& b,
                      const char* which) {
  SCOPED_TRACE(which);
  EXPECT_EQ(a.handovers, b.handovers);
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.by_cause, b.by_cause);
  EXPECT_EQ(a.loop_episodes, b.loop_episodes);
  EXPECT_EQ(a.loop_handovers, b.loop_handovers);
  EXPECT_EQ(a.conflict_loop_episodes, b.conflict_loop_episodes);
  EXPECT_EQ(a.conflict_loop_handovers, b.conflict_loop_handovers);
  EXPECT_EQ(a.intra_freq_conflict_loops, b.intra_freq_conflict_loops);
  // Doubles compared with == on purpose: the guarantee is bit-identity.
  EXPECT_EQ(a.sim_time_s, b.sim_time_s);
  EXPECT_EQ(a.handover_interval_s.samples(), b.handover_interval_s.samples());
  EXPECT_EQ(a.feedback_delay_s.samples(), b.feedback_delay_s.samples());
  EXPECT_EQ(a.outage_durations_s, b.outage_durations_s);
  EXPECT_EQ(a.pre_failure_snrs_db, b.pre_failure_snrs_db);
  EXPECT_EQ(a.throughput_bps.samples(), b.throughput_bps.samples());
  EXPECT_EQ(a.downtime_fraction.samples(), b.downtime_fraction.samples());
}

void expect_identical(const ScenarioRun& a, const ScenarioRun& b) {
  expect_identical(a.legacy, b.legacy, "legacy");
  expect_identical(a.rem, b.rem, "rem");
  EXPECT_EQ(a.conflict_histogram, b.conflict_histogram);
  EXPECT_EQ(a.total_conflicts, b.total_conflicts);
}

}  // namespace

TEST(ScenarioRunner, ParallelIsBitIdenticalAcrossThreadCounts) {
  const std::vector<std::uint64_t> seeds = {3, 1, 7, 2};
  const auto route = rem::trace::Route::kBeijingShanghai;
  const double speed = 300.0, duration = 200.0;

  const auto serial =
      rem::bench::run_route(route, speed, duration, seeds);
  for (const std::size_t threads : {1UL, 2UL, 8UL}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto par = rem::bench::run_route_parallel(route, speed, duration,
                                                    seeds, true, threads);
    expect_identical(serial, par);
  }
}

TEST(ScenarioRunner, LegacyOnlyParallelMatchesSerial) {
  const std::vector<std::uint64_t> seeds = {11, 12, 13};
  const auto route = rem::trace::Route::kBeijingTaiyuan;
  const auto serial = rem::bench::run_route(route, 250.0, 150.0, seeds,
                                            /*run_rem=*/false);
  const auto par = rem::bench::run_route_parallel(route, 250.0, 150.0, seeds,
                                                  /*run_rem=*/false, 3);
  expect_identical(serial, par);
  EXPECT_EQ(par.rem.handovers, 0);
  EXPECT_TRUE(par.rem.throughput_bps.samples().empty());
}

TEST(ScenarioRunner, MergeOrderFollowsSeedListNotCompletion) {
  // Two permutations of the same seed list must yield the same totals but
  // merge per-seed samples in their respective list orders.
  const auto route = rem::trace::Route::kBeijingShanghai;
  const auto ab = rem::bench::run_route_parallel(route, 300.0, 150.0, {5, 9},
                                                 true, 2);
  const auto ba = rem::bench::run_route_parallel(route, 300.0, 150.0, {9, 5},
                                                 true, 2);
  EXPECT_EQ(ab.legacy.handovers, ba.legacy.handovers);
  EXPECT_EQ(ab.legacy.failures, ba.legacy.failures);
  ASSERT_EQ(ab.legacy.throughput_bps.samples().size(),
            ba.legacy.throughput_bps.samples().size());
  if (ab.legacy.throughput_bps.samples().size() == 2) {
    EXPECT_EQ(ab.legacy.throughput_bps.samples()[0],
              ba.legacy.throughput_bps.samples()[1]);
    EXPECT_EQ(ab.legacy.throughput_bps.samples()[1],
              ba.legacy.throughput_bps.samples()[0]);
  }
}
