// Command-line scenario runner: simulate a route with legacy or REM
// management and optionally dump the signaling event log as CSV — the
// workflow for producing "datasets" from this repo.
//
//   ./examples/rem_sim_cli [--route la|bt|bs] [--speed KMH]
//                          [--duration S] [--seed N] [--manager legacy|rem]
//                          [--events out.csv]
#include "common/stats.hpp"
#include "core/legacy_manager.hpp"
#include "core/rem_manager.hpp"
#include "phy/bler_model.hpp"
#include "trace/eventlog.hpp"
#include "trace/scenario.hpp"

#include <cstdio>
#include <cstring>
#include <string>

using namespace rem;

namespace {

struct CliOptions {
  trace::Route route = trace::Route::kBeijingShanghai;
  double speed_kmh = 300.0;
  double duration_s = 1000.0;
  std::uint64_t seed = 1;
  bool use_rem = false;
  std::string events_path;
};

bool parse(int argc, char** argv, CliOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--route") {
      const char* v = need_value("--route");
      if (v == nullptr) return false;
      if (std::strcmp(v, "la") == 0)
        opt.route = trace::Route::kLowMobilityLA;
      else if (std::strcmp(v, "bt") == 0)
        opt.route = trace::Route::kBeijingTaiyuan;
      else if (std::strcmp(v, "bs") == 0)
        opt.route = trace::Route::kBeijingShanghai;
      else {
        std::fprintf(stderr, "unknown route '%s' (la|bt|bs)\n", v);
        return false;
      }
    } else if (arg == "--speed") {
      const char* v = need_value("--speed");
      if (v == nullptr) return false;
      opt.speed_kmh = std::atof(v);
    } else if (arg == "--duration") {
      const char* v = need_value("--duration");
      if (v == nullptr) return false;
      opt.duration_s = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = need_value("--seed");
      if (v == nullptr) return false;
      opt.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else if (arg == "--manager") {
      const char* v = need_value("--manager");
      if (v == nullptr) return false;
      opt.use_rem = std::strcmp(v, "rem") == 0;
    } else if (arg == "--events") {
      const char* v = need_value("--events");
      if (v == nullptr) return false;
      opt.events_path = v;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: rem_sim_cli [--route la|bt|bs] [--speed KMH]\n"
          "                   [--duration S] [--seed N]\n"
          "                   [--manager legacy|rem] [--events out.csv]\n");
      return false;
    } else {
      std::fprintf(stderr, "unknown option '%s' (try --help)\n",
                   arg.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opt;
  if (!parse(argc, argv, opt)) return 1;

  const auto sc =
      trace::make_scenario(opt.route, opt.speed_kmh, opt.duration_s);
  common::Rng rng(opt.seed);
  auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto holes = sim::make_hole_segments(sc.deployment, rng);
  sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = trace::synthesize_policies(cells, sc.policy_mix, rng);

  phy::LogisticBlerModel bler;
  auto sim_cfg = sc.sim;
  sim_cfg.record_events = !opt.events_path.empty();

  sim::SimStats stats;
  std::string manager_name;
  if (opt.use_rem) {
    core::RemManager mgr(core::RemConfig{}, rng.fork());
    sim::Simulator s(env, sim_cfg, bler, rng.fork());
    stats = s.run(mgr);
    manager_name = "REM";
  } else {
    core::LegacyConfig lc;
    lc.policies = policies;
    lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
    lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;
    core::LegacyManager mgr(lc);
    sim::Simulator s(env, sim_cfg, bler, rng.fork());
    stats = s.run(mgr);
    manager_name = "Legacy";
  }

  std::printf("%s over %s, %.0f km/h, %.0f s (seed %llu)\n",
              manager_name.c_str(), trace::route_name(opt.route).c_str(),
              opt.speed_kmh, opt.duration_s,
              static_cast<unsigned long long>(opt.seed));
  std::printf("  handovers %d, failures %d (%.2f%%), loops %d\n",
              stats.handovers, stats.failures,
              100.0 * stats.failure_ratio(), stats.loop_episodes);
  std::printf("  mean throughput %.1f Mbps, downtime %.2f%%\n",
              stats.mean_throughput_bps / 1e6,
              100.0 * stats.downtime_fraction);
  for (const auto& [cause, n] : stats.failures_by_cause)
    std::printf("  %-22s %d\n", sim::failure_cause_name(cause).c_str(), n);

  if (!opt.events_path.empty()) {
    trace::write_event_csv_file(stats.events, opt.events_path);
    std::printf("  wrote %zu events to %s\n", stats.events.size(),
                opt.events_path.c_str());
  }
  return 0;
}
