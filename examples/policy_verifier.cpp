// Policy verifier: detect handover policy conflicts in an operator policy
// set, then simplify and repair it per REM §5.3 (Fig. 8 + Theorem 2).
//
//   ./examples/policy_verifier
#include "mobility/conflict.hpp"
#include "mobility/simplify.hpp"
#include "trace/scenario.hpp"

#include <cstdio>

using namespace rem;
namespace rm = rem::mobility;

int main() {
  // Synthesize an operator policy set for a 60-cell HSR stretch.
  const auto sc = trace::make_scenario(trace::Route::kBeijingShanghai,
                                       300.0, 600.0);
  common::Rng rng(5);
  auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto policies = trace::synthesize_policies(cells, sc.policy_mix, rng);
  auto pcs = trace::to_policy_cells(cells, policies);

  std::printf("Policy verifier: %zu cells\n\n", pcs.size());

  // ---- Step 1: exact two-cell conflict detection ----
  const auto conflicts = rm::find_two_cell_conflicts(pcs);
  std::printf("legacy policy set: %zu two-cell conflicts\n",
              conflicts.size());
  for (const auto& [type, count] : rm::conflict_histogram(conflicts))
    std::printf("  %-8s %d\n", type.c_str(), count);
  if (!conflicts.empty()) {
    const auto& c = conflicts.front();
    std::printf("example: cells %d <-> %d (%s), both fire at "
                "R%d=%.1f / R%d=%.1f dBm\n",
                c.cell_i, c.cell_j,
                rm::conflict_type_label(c.event_i, c.event_j).c_str(),
                c.cell_i, c.witness_ri, c.cell_j, c.witness_rj);
  }

  // ---- Step 2: Fig. 8 simplification ----
  rm::SimplifyStats total;
  for (auto& pc : pcs) {
    rm::SimplifyStats s;
    pc.policy = rm::simplify_policy(pc.policy, 1.0, &s);
    total.removed_a1_a2 += s.removed_a1_a2;
    total.a4_to_a3 += s.a4_to_a3;
    total.a5_to_a3 += s.a5_to_a3;
    total.kept_a3 += s.kept_a3;
    total.removed_stages += s.removed_stages;
  }
  std::printf("\nREM simplification (Fig. 8): removed %d A1/A2 guards and "
              "%d stages,\nrewrote %d A4 and %d A5 rules as A3, kept %d "
              "A3 rules\n",
              total.removed_a1_a2, total.removed_stages, total.a4_to_a3,
              total.a5_to_a3, total.kept_a3);

  const auto after_simplify = rm::find_two_cell_conflicts(pcs);
  std::printf("conflicts after simplification (before coordination): %zu\n",
              after_simplify.size());

  // ---- Step 3: Theorem-2 offset coordination ----
  rm::coordinate_offsets(pcs);
  const auto after_repair = rm::find_two_cell_conflicts(pcs);
  std::printf("conflicts after Theorem-2 coordination: %zu\n",
              after_repair.size());

  // ---- Step 4: verify the offset matrix explicitly ----
  std::vector<std::vector<double>> deltas(pcs.size(),
                                          std::vector<double>(pcs.size()));
  for (std::size_t i = 0; i < pcs.size(); ++i)
    for (std::size_t j = 0; j < pcs.size(); ++j) {
      if (i == j) continue;
      deltas[i][j] = pcs[i]
                         .policy
                         .a3_offset_for(pcs[j].id.channel,
                                        pcs[i].id.channel)
                         .value_or(0.0);
    }
  const auto violations = rm::check_theorem2(deltas);
  std::printf("Theorem 2 check: %zu violated triples -> %s\n",
              violations.size(),
              violations.empty() ? "provably loop-free (Theorems 2 & 3)"
                                 : "NOT conflict-free");
  return violations.empty() ? 0 : 1;
}
