// Movement tracking demo (§10 future work: delay-Doppler localization).
//
// A train passes a base station on the geometric channel model; at each
// position REM estimates the delay-Doppler channel, factorizes it
// (Algorithm 1), and recovers the client's speed and approach/recede state
// from the extracted path parameters — no GPS, just the pilot signals.
//
//   ./examples/movement_tracking
#include "channel/geometry.hpp"
#include "common/units.hpp"
#include "crossband/movement.hpp"
#include "crossband/rem_svd.hpp"
#include "phy/channel_est.hpp"

#include <cstdio>

using namespace rem;

int main() {
  common::Rng rng(42);
  channel::GeometryConfig geo;
  geo.bs_x_m = 1500.0;
  geo.bs_y_m = 200.0;
  geo.carrier_hz = 1.88e9;
  geo.speed_mps = common::kmh_to_mps(330.0);
  geo.scatterers = channel::make_scatterer_field(geo.bs_x_m, 4, rng);
  const channel::GeometricHstChannel track(geo);

  phy::Numerology num;
  num.num_subcarriers = 64;
  num.num_symbols = 32;
  num.cp_len = 16;
  phy::DdChannelEstimator dd(num);

  std::printf("Movement tracking along a %0.f km/h pass-by "
              "(BS abeam at x=%.0f m)\n\n",
              common::mps_to_kmh(geo.speed_mps), geo.bs_x_m);
  std::printf("  %8s %14s %14s %12s %10s\n", "x (m)", "true LOS nu",
              "est. speed", "true speed", "heading");

  for (double x = 0.0; x <= 3000.0; x += 300.0) {
    const auto snapshot = track.snapshot(x);
    crossband::CrossbandInput in;
    in.num = num;
    in.f1_hz = geo.carrier_hz;
    in.f2_hz = geo.carrier_hz;
    in.h1_dd = dd.estimate(snapshot, 25.0, rng).h;
    in.h1_tf = dsp::Matrix(num.num_subcarriers, num.num_symbols);
    crossband::RemSvdEstimator est;
    est.estimate(in);
    const auto mv = crossband::estimate_movement(est.last_paths(),
                                                 geo.carrier_hz);
    std::printf("  %8.0f %11.0f Hz %11.1f m/s %9.1f m/s %10s\n", x,
                track.los_doppler_hz(x),
                mv ? mv->speed_mps : 0.0, geo.speed_mps,
                mv && mv->heading_sign > 0 ? "approach" : "recede");
  }

  std::printf("\nNear the site the LOS Doppler sweeps through zero "
              "(geometry), so the speed\nestimate dips abeam and recovers "
              "— the inertial signature the paper proposes\nexploiting "
              "for movement-based management.\n");
  return 0;
}
