// Quickstart: send signaling over REM's delay-Doppler overlay.
//
// Builds a high-speed-rail channel, pushes a measurement report and a
// handover command through the scheduling-based OTFS overlay, and compares
// delivery against legacy OFDM signaling at the same SNR.
//
//   ./examples/quickstart
#include "channel/profiles.hpp"
#include "common/units.hpp"
#include "core/overlay.hpp"

#include <cstdio>

using namespace rem;

int main() {
  common::Rng rng(2024);

  // A 350 km/h high-speed-rail channel at 2 GHz.
  channel::ChannelDrawConfig draw;
  draw.profile = channel::Profile::kHST350;
  draw.speed_mps = common::kmh_to_mps(350.0);
  draw.carrier_hz = 2.0e9;

  std::printf("REM quickstart: OTFS signaling overlay vs legacy OFDM\n");
  std::printf("channel: %s, %0.f km/h, max Doppler %.0f Hz, coherence "
              "time %.2f ms\n\n",
              channel::profile_name(draw.profile).c_str(), 350.0,
              common::max_doppler_hz(draw.speed_mps, draw.carrier_hz),
              1e3 * common::coherence_time_s(draw.speed_mps,
                                             draw.carrier_hz));

  const double snr_db = 4.0;  // the rough SNR where handovers happen
  const int subframes = 200;

  for (bool legacy : {false, true}) {
    core::OverlayConfig cfg;
    cfg.legacy_ofdm = legacy;
    int delivered = 0, lost = 0;
    for (int i = 0; i < subframes; ++i) {
      core::SignalingOverlay overlay(cfg);
      // Typical RRC sizes: measurement report ~30 B, HO command ~60 B.
      overlay.enqueue_signaling(1, 30);
      overlay.enqueue_signaling(2, 60);
      overlay.enqueue_data(100, 200);
      const auto ch = channel::draw_channel(draw, rng);
      while (overlay.signaling_backlog_bytes() > 0) {
        const auto out = overlay.transmit_subframe(ch, snr_db, rng);
        delivered += static_cast<int>(out.delivered_signaling_ids.size());
        lost += static_cast<int>(out.lost_signaling_ids.size());
        if (out.delivered_signaling_ids.empty() &&
            out.lost_signaling_ids.empty())
          break;  // nothing scheduled (shouldn't happen)
      }
    }
    std::printf("%-12s delivered %4d / lost %4d signaling messages "
                "(loss %.1f%%)\n",
                legacy ? "legacy OFDM" : "REM OTFS", delivered, lost,
                100.0 * lost / std::max(delivered + lost, 1));
  }

  std::printf("\nThe OTFS overlay rides the full time-frequency diversity "
              "of the grid, so the same\nSNR delivers far more of the "
              "handover-critical signaling (paper Fig. 10).\n");
  return 0;
}
