// High-speed-rail handover demo: ride a synthesized Beijing-Shanghai-style
// route at 300 km/h with legacy 4G/5G management and with REM, and print
// the handover/failure story of each run.
//
//   ./examples/hsr_handover [speed_kmh] [duration_s] [seed]
#include "common/stats.hpp"
#include "core/legacy_manager.hpp"
#include "core/rem_manager.hpp"
#include "phy/bler_model.hpp"
#include "trace/scenario.hpp"

#include <cstdio>
#include <cstdlib>

using namespace rem;

namespace {

void report(const char* name, const sim::SimStats& s) {
  std::printf("\n--- %s ---\n", name);
  std::printf("handovers: %d (%.1fs avg interval), failures: %d "
              "(ratio %.2f%%)\n",
              s.handovers, s.avg_handover_interval_s, s.failures,
              100.0 * s.failure_ratio());
  for (const auto& [cause, n] : s.failures_by_cause)
    std::printf("  %-22s %d\n", sim::failure_cause_name(cause).c_str(), n);
  std::printf("loop episodes: %d (%d handovers in loops)\n",
              s.loop_episodes, s.loop_handovers);
  if (!s.feedback_delays_s.empty()) {
    common::Summary fd;
    fd.add_all(s.feedback_delays_s);
    std::printf("feedback delay: mean %.0f ms, p90 %.0f ms\n",
                1e3 * fd.mean(), 1e3 * fd.percentile(90));
  }
  if (!s.outage_durations_s.empty()) {
    common::Summary od;
    od.add_all(s.outage_durations_s);
    std::printf("outages: %zu, mean %.2f s\n", od.count(), od.mean());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const double speed = argc > 1 ? std::atof(argv[1]) : 300.0;
  const double duration = argc > 2 ? std::atof(argv[2]) : 1200.0;
  const std::uint64_t seed = argc > 3
                                 ? static_cast<std::uint64_t>(
                                       std::atoll(argv[3]))
                                 : 7;

  const auto sc =
      trace::make_scenario(trace::Route::kBeijingShanghai, speed, duration);
  common::Rng rng(seed);
  auto cells = sim::make_rail_deployment(sc.deployment, rng);
  auto holes = sim::make_hole_segments(sc.deployment, rng);
  sim::RadioEnv env(cells, sc.propagation, rng.fork(), holes);
  auto policies = trace::synthesize_policies(cells, sc.policy_mix, rng);

  std::printf("route: %.0f km, %zu cells on %d sites, %zu coverage holes, "
              "%.0f km/h for %.0f s\n",
              sc.deployment.route_len_m / 1000.0, cells.size(),
              cells.empty() ? 0 : cells.back().id.base_station + 1,
              holes.size(), speed, duration);

  phy::LogisticBlerModel bler;

  core::LegacyConfig lc;
  lc.policies = policies;
  lc.measurement.intra_ttt_s = sc.policy_mix.intra_ttt_s;
  lc.measurement.inter_ttt_s = sc.policy_mix.inter_ttt_s;
  core::LegacyManager legacy(lc);
  sim::Simulator s1(env, sc.sim, bler, rng.fork());
  report("Legacy 4G/5G", s1.run(legacy));

  core::RemManager remm(core::RemConfig{}, rng.fork());
  sim::Simulator s2(env, sc.sim, bler, rng.fork());
  report("REM", s2.run(remm));

  std::printf("\nREM triggers on stable delay-Doppler SNR, sees co-located "
              "cells through cross-band\nestimation, and ships its "
              "signaling over OTFS — so the same route loses far fewer\n"
              "handovers (paper Table 5).\n");
  return 0;
}
