// Cross-band estimation walk-through (Algorithm 1).
//
// Measures one cell of a base station on f1, factorizes its delay-Doppler
// channel with SVD, retargets the Doppler factor to f2, and compares the
// predicted co-located cell against direct measurement.
//
//   ./examples/crossband_demo
#include "common/units.hpp"
#include "crossband/rem_svd.hpp"
#include "crossband/metrics.hpp"
#include "phy/channel_est.hpp"

#include <cstdio>

using namespace rem;

int main() {
  common::Rng rng(99);

  // The physical channel a 350 km/h client sees from one site.
  channel::ChannelDrawConfig draw;
  draw.profile = channel::Profile::kHST350;
  draw.speed_mps = common::kmh_to_mps(350.0);
  draw.carrier_hz = 1.88e9;
  const auto ch1 = channel::draw_channel(draw, rng);

  // The co-located cell on 2.6 GHz shares delays and attenuations; its
  // Dopplers scale by f2/f1.
  const double f1 = 1.88e9, f2 = 2.6e9;
  const auto ch2 = ch1.with_doppler_scaled(f2 / f1);

  std::printf("Cross-band estimation demo (Algorithm 1)\n");
  std::printf("physical paths of the site:\n");
  for (const auto& p : ch1.paths())
    std::printf("  |h|=%.3f  tau=%7.1f ns  nu(f1)=%8.1f Hz  nu(f2)=%8.1f "
                "Hz\n",
                std::abs(p.gain), p.delay_s * 1e9, p.doppler_hz,
                p.doppler_hz * f2 / f1);

  // Step 1: measure cell 1 in the delay-Doppler domain (noisy pilot).
  phy::Numerology num;
  num.num_subcarriers = 64;
  num.num_symbols = 16;
  num.cp_len = 16;
  phy::DdChannelEstimator dd(num);
  crossband::CrossbandInput in;
  in.num = num;
  in.f1_hz = f1;
  in.f2_hz = f2;
  in.h1_dd = dd.estimate(ch1, 20.0, rng).h;
  in.h1_tf = crossband::measure_tf(ch1, num, 20.0, rng);

  // Step 2: SVD factorization + Doppler rescaling.
  crossband::RemSvdEstimator est;
  const auto out = est.estimate(in);
  std::printf("\nSVD-extracted paths (band-2 Dopplers):\n");
  for (const auto& p : est.last_paths())
    std::printf("  sigma=%.3f  tau=%7.1f ns  nu(f2)=%8.1f Hz\n",
                p.attenuation, p.delay_s * 1e9, p.doppler_hz);

  // Step 3: compare against a direct (never performed in REM) measurement.
  const auto truth = dd.estimate_noiseless(ch2);
  const double rel = (out.h2 - truth.h).frobenius_norm() /
                     truth.h.frobenius_norm();
  const double pred_gain_db = 10.0 * std::log10(out.mean_gain);
  const double true_gain_db =
      10.0 * std::log10(phy::mean_channel_gain(truth.h));
  std::printf("\npredicted band-2 channel: %.1f%% relative error\n",
              100.0 * rel);
  std::printf("predicted mean gain %.2f dB vs true %.2f dB (error %.2f "
              "dB)\n",
              pred_gain_db, true_gain_db,
              std::abs(pred_gain_db - true_gain_db));
  std::printf("\nREM never spent a measurement gap on the 2.6 GHz cell — "
              "its quality came from\nthe 1.88 GHz measurement alone "
              "(paper §5.2, Fig. 12).\n");
  return 0;
}
